package wcq

import (
	"fmt"
	"sync"

	"wcqueue/internal/core"
)

// Striped is a sharded front-end over W independent wCQ rings
// (DESIGN.md §7). Every handle is pinned to one stripe ("lane"):
// enqueues always target the handle's own lane, dequeues scan all
// lanes starting from it (work stealing), so the shared Tail/Head
// fetch-and-add — the scalability bottleneck of a single ring — is
// split W ways.
//
// Ordering contract: Striped is NOT a single FIFO. It is FIFO per
// handle — two values enqueued through the same handle are always
// dequeued in order, because a handle's values live in one lane and
// each lane is a wait-free FIFO. Values from different handles may
// interleave arbitrarily, which is exactly the reordering a concurrent
// single queue already exhibits between producers. The handle-free
// methods borrow a pooled handle per call and therefore order only
// within a call (a batch stays in order); workloads that need
// per-goroutine order across calls should hold an explicit
// StripedHandle, and those that need a single total order should use
// Queue instead.
//
// Progress: every operation is wait-free (enqueue touches one lane;
// dequeue does at most one wait-free Dequeue per lane per scan).
// Enqueue returns false only when the handle's lane is full; Dequeue
// returns false only after observing every lane empty — observations
// taken lane by lane, not atomically, so false is advisory under
// concurrent enqueues (see StripedHandle.Dequeue).
type Striped[T any] struct {
	lanes []*core.Queue[T]
	pool  handlePool[StripedHandle[T]]

	// Lane assignment. Fresh handles take recycled lanes LIFO before
	// advancing the round-robin cursor: a monotone cursor alone skews
	// occupancy under register/unregister churn (lanes whose handles
	// left stay empty while the cursor piles new handles elsewhere).
	laneMu    sync.Mutex
	freeLanes []int
	nextLane  int
}

// StripedHandle is a registered per-goroutine token of a Striped
// queue. It carries one underlying handle per lane plus the lane
// affinity. Must not be shared between concurrently running
// goroutines.
type StripedHandle[T any] struct {
	s    *Striped[T]
	lane int
	hs   []*core.Handle
}

// NewStriped creates a striped queue of `stripes` independent lanes,
// each holding up to 2^order values (total capacity: stripes·2^order).
// Handles register dynamically, as with New.
func NewStriped[T any](order uint, stripes int, opts ...Option) (*Striped[T], error) {
	if stripes < 1 {
		return nil, fmt.Errorf("wcq: stripes %d out of range [1, ∞)", stripes)
	}
	c := buildConfig(opts)
	s := &Striped[T]{lanes: make([]*core.Queue[T], stripes)}
	for i := range s.lanes {
		q, err := core.NewQueue[T](order, c.core)
		if err != nil {
			return nil, fmt.Errorf("wcq: allocating stripe %d: %w", i, err)
		}
		s.lanes[i] = q
	}
	s.pool.init(s.Register, func(h *StripedHandle[T]) { h.Unregister() })
	return s, nil
}

// MustStriped is NewStriped that panics on error.
func MustStriped[T any](order uint, stripes int, opts ...Option) *Striped[T] {
	s, err := NewStriped[T](order, stripes, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Stripes returns the lane count W.
func (s *Striped[T]) Stripes() int { return len(s.lanes) }

// Cap returns the total capacity across all lanes.
func (s *Striped[T]) Cap() int { return len(s.lanes) * s.lanes[0].Cap() }

// assignLane picks the affinity for a fresh handle: the most recently
// recycled lane when one is free, else the next lane round-robin.
func (s *Striped[T]) assignLane() int {
	s.laneMu.Lock()
	defer s.laneMu.Unlock()
	if n := len(s.freeLanes); n > 0 {
		l := s.freeLanes[n-1]
		s.freeLanes = s.freeLanes[:n-1]
		return l
	}
	l := s.nextLane % len(s.lanes)
	s.nextLane++
	return l
}

func (s *Striped[T]) releaseLane(l int) {
	s.laneMu.Lock()
	s.freeLanes = append(s.freeLanes, l)
	s.laneMu.Unlock()
}

// Register claims a handle, registering it on every lane and pinning
// it to a recycled or round-robin lane.
func (s *Striped[T]) Register() (*StripedHandle[T], error) {
	h := &StripedHandle[T]{
		s:    s,
		lane: s.assignLane(),
		hs:   make([]*core.Handle, len(s.lanes)),
	}
	for i, q := range s.lanes {
		lh, err := q.Register()
		if err != nil {
			for j := 0; j < i; j++ {
				s.lanes[j].Unregister(h.hs[j])
			}
			s.releaseLane(h.lane)
			return nil, err
		}
		h.hs[i] = lh
	}
	return h, nil
}

// Unregister releases the handle's slot on every lane and recycles its
// lane assignment, so churn cannot concentrate surviving handles on a
// few lanes.
func (h *StripedHandle[T]) Unregister() {
	for i, q := range h.s.lanes {
		q.Unregister(h.hs[i])
	}
	h.s.releaseLane(h.lane)
}

// Lane returns the handle's lane affinity (test and telemetry hook).
func (h *StripedHandle[T]) Lane() int { return h.lane }

// Enqueue inserts v into the handle's lane, returning false when that
// lane is full. Staying on one lane is what preserves per-handle FIFO;
// callers that prefer load spilling over ordering can Register several
// handles. Wait-free.
func (h *StripedHandle[T]) Enqueue(v T) bool {
	return h.s.lanes[h.lane].Enqueue(h.hs[h.lane], v)
}

// Dequeue removes a value, preferring the handle's own lane and
// stealing from the others in ring order. Returns ok=false only after
// every lane reported empty during the scan. That scan is NOT a
// linearizable emptiness check: the per-lane observations happen at
// different instants, so a concurrent enqueue landing in a lane the
// scan has already passed can make Dequeue return false while the
// queue was never globally empty at any single point in time. Callers
// polling a striped queue must treat false as "probably empty" and
// retry, exactly as they would with any work-stealing deque.
// Wait-free.
func (h *StripedHandle[T]) Dequeue() (v T, ok bool) {
	s := h.s
	w := len(s.lanes)
	for i := 0; i < w; i++ {
		l := h.lane + i
		if l >= w {
			l -= w
		}
		if v, ok := s.lanes[l].Dequeue(h.hs[l]); ok {
			return v, true
		}
	}
	return v, false
}

// EnqueueBatch inserts up to len(vs) values into the handle's lane
// with batched ring reservations, returning how many were inserted.
// Wait-free.
func (h *StripedHandle[T]) EnqueueBatch(vs []T) int {
	return h.s.lanes[h.lane].EnqueueBatch(h.hs[h.lane], vs)
}

// DequeueBatch removes up to len(out) values, draining the handle's
// own lane first and stealing the remainder from the other lanes.
// Returns how many were dequeued. Wait-free.
func (h *StripedHandle[T]) DequeueBatch(out []T) int {
	s := h.s
	w, n := len(s.lanes), 0
	for i := 0; i < w && n < len(out); i++ {
		l := h.lane + i
		if l >= w {
			l -= w
		}
		n += s.lanes[l].DequeueBatch(h.hs[l], out[n:])
	}
	return n
}

// Enqueue inserts v through a pooled handle, returning false when the
// borrowed handle's lane is full.
func (s *Striped[T]) Enqueue(v T) bool {
	h := s.pool.get()
	ok := h.Enqueue(v)
	s.pool.put(h)
	return ok
}

// Dequeue removes a value through a pooled handle, or returns
// ok=false after observing every lane empty.
func (s *Striped[T]) Dequeue() (v T, ok bool) {
	h := s.pool.get()
	v, ok = h.Dequeue()
	s.pool.put(h)
	return v, ok
}

// EnqueueBatch inserts up to len(vs) values through a pooled handle,
// returning how many were inserted. The batch lands in one lane, in
// order.
func (s *Striped[T]) EnqueueBatch(vs []T) int {
	h := s.pool.get()
	n := h.EnqueueBatch(vs)
	s.pool.put(h)
	return n
}

// DequeueBatch removes up to len(out) values through a pooled handle,
// returning how many were dequeued.
func (s *Striped[T]) DequeueBatch(out []T) int {
	h := s.pool.get()
	n := h.DequeueBatch(out)
	s.pool.put(h)
	return n
}

// Footprint returns the live bytes across all lanes; it moves only
// with the handle high-water mark.
func (s *Striped[T]) Footprint() int64 {
	var sum int64
	for _, q := range s.lanes {
		sum += q.Footprint()
	}
	return sum
}

// MaxOps returns the per-lane safe-operation bound (the binding limit,
// since each lane counts its own operations).
func (s *Striped[T]) MaxOps() uint64 { return s.lanes[0].MaxOps() }

// LiveHandles returns the number of currently registered handles.
func (s *Striped[T]) LiveHandles() int { return s.lanes[0].LiveHandles() }

// HandleHighWater returns the largest number of handles ever live at
// once.
func (s *Striped[T]) HandleHighWater() int { return s.lanes[0].HandleHighWater() }

// Stats aggregates slow-path statistics across all lanes.
func (s *Striped[T]) Stats() Stats {
	var out Stats
	for _, q := range s.lanes {
		st := q.Stats()
		out.SlowEnqueues += st.SlowEnqueues
		out.SlowDequeues += st.SlowDequeues
		out.Helps += st.Helps
	}
	return out
}
