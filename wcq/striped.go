package wcq

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wcqueue/internal/core"
	"wcqueue/internal/waitq"
)

// Striped is a sharded front-end over W independent wCQ rings
// (DESIGN.md §7). Every handle is pinned to one stripe ("lane"):
// enqueues always target the handle's own lane, dequeues scan all
// lanes starting from it (work stealing), so the shared Tail/Head
// fetch-and-add — the scalability bottleneck of a single ring — is
// split W ways.
//
// Ordering contract: Striped is NOT a single FIFO. It is FIFO per
// handle — two values enqueued through the same handle are always
// dequeued in order, because a handle's values live in one lane and
// each lane is a wait-free FIFO. Values from different handles may
// interleave arbitrarily, which is exactly the reordering a concurrent
// single queue already exhibits between producers. The handle-free
// methods borrow a pooled handle per call and therefore order only
// within a call (a batch stays in order); workloads that need
// per-goroutine order across calls should hold an explicit
// StripedHandle, and those that need a single total order should use
// Queue instead.
//
// Progress: every operation is wait-free (enqueue touches one lane;
// dequeue does at most one wait-free Dequeue per lane per scan).
// Enqueue returns false only when the handle's lane is full; Dequeue
// returns false only after observing every lane empty — observations
// taken lane by lane, not atomically, so false is advisory under
// concurrent enqueues (see StripedHandle.Dequeue).
type Striped[T any] struct {
	lanes []*core.Queue[T]
	pool  handlePool[StripedHandle[T]]

	// Lane assignment. Fresh handles take recycled lanes LIFO before
	// advancing the round-robin cursor: a monotone cursor alone skews
	// occupancy under register/unregister churn (lanes whose handles
	// left stay empty while the cursor piles new handles elsewhere).
	laneMu    sync.Mutex
	freeLanes []int
	nextLane  int

	// Blocking layer (DESIGN.md §10). Waiters park at the striped
	// level, not per lane: a blocked dequeuer must be woken by an
	// enqueue into ANY lane, and the per-lane emptiness scan is not
	// linearizable — only the eventcount's arm-then-rescan protocol
	// (DequeueWait) makes the parking decision sound. Close delegates
	// the enqueue/close linearization to the lanes (each lane's own
	// Close quiesces its in-flight enqueues), so the striped state is
	// purely a fail-fast gate plus the sealed marker for drains.
	notEmpty waitq.EventCount
	notFull  waitq.EventCount
	state    atomic.Uint32
}

// Striped close states, as in core: enqueues fail from stripedClosing
// on; only stripedSealed (published after in-flight enqueues quiesce)
// makes an all-lanes-empty scan conclusive.
const (
	stripedOpen uint32 = iota
	stripedClosing
	stripedSealed
)

// StripedHandle is a registered per-goroutine token of a Striped
// queue. It carries one underlying handle per lane plus the lane
// affinity. Must not be shared between concurrently running
// goroutines.
type StripedHandle[T any] struct {
	s    *Striped[T]
	lane int
	hs   []*core.Handle
	// w is the parking token for the blocking operations. Handle-local.
	w *waitq.Waiter
}

// waiter returns the handle's parking token, allocated on first use.
func (h *StripedHandle[T]) waiter() *waitq.Waiter {
	if h.w == nil {
		h.w = waitq.NewWaiter()
	}
	return h.w
}

// NewStriped creates a striped queue of `stripes` independent lanes,
// each holding up to 2^order values (total capacity: stripes·2^order).
// Handles register dynamically, as with New.
func NewStriped[T any](order uint, stripes int, opts ...Option) (*Striped[T], error) {
	if stripes < 1 {
		return nil, fmt.Errorf("wcq: stripes %d out of range [1, ∞)", stripes)
	}
	c := buildConfig(opts)
	s := &Striped[T]{lanes: make([]*core.Queue[T], stripes)}
	for i := range s.lanes {
		q, err := core.NewQueue[T](order, c.core)
		if err != nil {
			return nil, fmt.Errorf("wcq: allocating stripe %d: %w", i, err)
		}
		s.lanes[i] = q
	}
	s.pool.init(s.Register, func(h *StripedHandle[T]) { h.Unregister() })
	return s, nil
}

// MustStriped is NewStriped that panics on error.
func MustStriped[T any](order uint, stripes int, opts ...Option) *Striped[T] {
	s, err := NewStriped[T](order, stripes, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Stripes returns the lane count W.
func (s *Striped[T]) Stripes() int { return len(s.lanes) }

// Cap returns the total capacity across all lanes.
func (s *Striped[T]) Cap() int { return len(s.lanes) * s.lanes[0].Cap() }

// assignLane picks the affinity for a fresh handle: the most recently
// recycled lane when one is free, else the next lane round-robin.
func (s *Striped[T]) assignLane() int {
	s.laneMu.Lock()
	defer s.laneMu.Unlock()
	if n := len(s.freeLanes); n > 0 {
		l := s.freeLanes[n-1]
		s.freeLanes = s.freeLanes[:n-1]
		return l
	}
	l := s.nextLane % len(s.lanes)
	s.nextLane++
	return l
}

func (s *Striped[T]) releaseLane(l int) {
	s.laneMu.Lock()
	s.freeLanes = append(s.freeLanes, l)
	s.laneMu.Unlock()
}

// Register claims a handle, registering it on every lane and pinning
// it to a recycled or round-robin lane.
func (s *Striped[T]) Register() (*StripedHandle[T], error) {
	h := &StripedHandle[T]{
		s:    s,
		lane: s.assignLane(),
		hs:   make([]*core.Handle, len(s.lanes)),
	}
	for i, q := range s.lanes {
		lh, err := q.Register()
		if err != nil {
			for j := 0; j < i; j++ {
				s.lanes[j].Unregister(h.hs[j])
			}
			s.releaseLane(h.lane)
			return nil, err
		}
		h.hs[i] = lh
	}
	return h, nil
}

// Unregister releases the handle's slot on every lane and recycles its
// lane assignment, so churn cannot concentrate surviving handles on a
// few lanes.
func (h *StripedHandle[T]) Unregister() {
	for i, q := range h.s.lanes {
		q.Unregister(h.hs[i])
	}
	h.s.releaseLane(h.lane)
}

// Lane returns the handle's lane affinity (test and telemetry hook).
func (h *StripedHandle[T]) Lane() int { return h.lane }

// Enqueue inserts v into the handle's lane, returning false when that
// lane is full or the queue is closed. Staying on one lane is what
// preserves per-handle FIFO; callers that prefer load spilling over
// ordering can Register several handles. Wait-free.
func (h *StripedHandle[T]) Enqueue(v T) bool {
	s := h.s
	if s.state.Load() != stripedOpen {
		return false // fail fast; the lane's own close check is the authority
	}
	ok := s.lanes[h.lane].Enqueue(h.hs[h.lane], v)
	if ok {
		s.notEmpty.Signal()
	}
	return ok
}

// Dequeue removes a value, preferring the handle's own lane and
// stealing from the others in ring order. Returns ok=false only after
// every lane reported empty during the scan. That scan is NOT a
// linearizable emptiness check: the per-lane observations happen at
// different instants, so a concurrent enqueue landing in a lane the
// scan has already passed can make Dequeue return false while the
// queue was never globally empty at any single point in time. Callers
// polling a striped queue must treat false as "probably empty" and
// retry, exactly as they would with any work-stealing deque.
// Wait-free.
func (h *StripedHandle[T]) Dequeue() (v T, ok bool) {
	s := h.s
	w := len(s.lanes)
	for i := 0; i < w; i++ {
		l := h.lane + i
		if l >= w {
			l -= w
		}
		if v, ok := s.lanes[l].Dequeue(h.hs[l]); ok {
			s.notFull.Signal()
			return v, true
		}
	}
	return v, false
}

// EnqueueBatch inserts up to len(vs) values into the handle's lane
// with batched ring reservations, returning how many were inserted
// (0 when the queue is closed). Wait-free.
func (h *StripedHandle[T]) EnqueueBatch(vs []T) int {
	s := h.s
	if s.state.Load() != stripedOpen {
		return 0 // fail fast; the lane's own close check is the authority
	}
	n := s.lanes[h.lane].EnqueueBatch(h.hs[h.lane], vs)
	s.notEmpty.SignalN(n)
	return n
}

// DequeueBatch removes up to len(out) values, draining the handle's
// own lane first and stealing the remainder from the other lanes.
// Returns how many were dequeued. Wait-free.
func (h *StripedHandle[T]) DequeueBatch(out []T) int {
	s := h.s
	w, n := len(s.lanes), 0
	for i := 0; i < w && n < len(out); i++ {
		l := h.lane + i
		if l >= w {
			l -= w
		}
		n += s.lanes[l].DequeueBatch(h.hs[l], out[n:])
	}
	s.notFull.SignalN(n)
	return n
}

// EnqueueWait inserts v into the handle's lane, blocking while that
// lane is full. Returns nil on success, ErrClosed if the queue is (or
// becomes) closed first, or ctx.Err() if the context is done. The
// waiter parks on the queue-wide notFull eventcount and is woken by a
// dequeue from any lane. Enqueue-waiters have per-lane predicates, so
// a wakeup token can land on a producer whose own lane is still full;
// that producer must pass the token on (see the post-wake retry
// below), or the producer whose lane actually freed would sleep
// forever on a queue with a free slot.
func (h *StripedHandle[T]) EnqueueWait(ctx context.Context, v T) error {
	s := h.s
	if h.Enqueue(v) {
		return nil
	}
	if s.state.Load() != stripedOpen {
		return ErrClosed
	}
	for i := 0; waitq.Spin(i); i++ {
		if h.Enqueue(v) {
			return nil
		}
		if s.state.Load() != stripedOpen {
			return ErrClosed
		}
	}
	w := h.waiter()
	for {
		s.notFull.Prepare(w)
		if h.Enqueue(v) {
			s.notFull.Cancel(w)
			return nil
		}
		if s.state.Load() != stripedOpen {
			s.notFull.Cancel(w)
			return ErrClosed
		}
		if err := s.notFull.Wait(ctx, w); err != nil {
			return err
		}
		// Woken: the freed slot may be in another parked producer's
		// lane, not ours. Retry once; on failure forward the token
		// BEFORE re-arming — we are not armed at this instant, so the
		// Signal cannot hand the token straight back to us, and with
		// no other waiter armed it drops harmlessly. Tokens never
		// multiply (one consumed, at most one forwarded), so there is
		// no livelock — just a bounded relay until the token reaches
		// a producer that can use it or no one is parked.
		if h.Enqueue(v) {
			return nil
		}
		if s.state.Load() != stripedOpen {
			return ErrClosed
		}
		s.notFull.Signal()
	}
}

// DequeueWait removes a value, blocking while every lane is empty.
// Returns the value, ErrClosed once the queue is closed and drained,
// or ctx.Err() if the context is done first.
//
// The lane-by-lane emptiness scan of Dequeue is NOT linearizable: a
// concurrent enqueue can land in a lane the scan already passed. A
// naive "scan, then park" would therefore strand the consumer — the
// producer's wakeup can fire between the scan and the park, and its
// value sits in a lane the scan reported empty. The eventcount closes
// that race: the waiter is armed FIRST (Prepare), the scan runs
// AGAIN afterwards, and only then does it park. Any enqueue that
// lands after the re-scan started finds the armed waiter and wakes
// it; any enqueue before it is found by the re-scan itself.
func (h *StripedHandle[T]) DequeueWait(ctx context.Context) (T, error) {
	s := h.s
	if v, ok := h.Dequeue(); ok {
		return v, nil
	}
	for i := 0; waitq.Spin(i); i++ {
		if v, ok := h.Dequeue(); ok {
			return v, nil
		}
		if s.state.Load() == stripedSealed {
			break
		}
	}
	w := h.waiter()
	for {
		s.notEmpty.Prepare(w)
		// Re-scan after arming: the pre-park double-check that fixes
		// the striped lost-wakeup hazard.
		if v, ok := h.Dequeue(); ok {
			s.notEmpty.Cancel(w)
			return v, nil
		}
		if s.state.Load() == stripedSealed {
			s.notEmpty.Cancel(w)
			// One full scan after observing sealed is conclusive: no
			// enqueue can land past the seal, so all-lanes-empty is
			// now a stable property.
			if v, ok := h.Dequeue(); ok {
				return v, nil
			}
			var zero T
			return zero, ErrClosed
		}
		if err := s.notEmpty.Wait(ctx, w); err != nil {
			var zero T
			return zero, err
		}
	}
}

// DequeueBlock is DequeueWait without a deadline.
func (h *StripedHandle[T]) DequeueBlock() (T, error) {
	return h.DequeueWait(context.Background())
}

// Close closes the queue: subsequent enqueues fail on every lane,
// blocked enqueuers return ErrClosed, and dequeuers drain the values
// remaining across all lanes before observing ErrClosed. The striped
// state is only the fail-fast gate; the linearization against
// in-flight enqueues is delegated to the lanes — closing each lane
// quiesces its enqueuers (core's ActiveFlag protocol), so once every
// lane is sealed, a full all-lanes-empty scan is conclusive and
// stripedSealed is published. Idempotent.
func (s *Striped[T]) Close() {
	if !s.state.CompareAndSwap(stripedOpen, stripedClosing) {
		for s.state.Load() != stripedSealed {
			runtime.Gosched()
		}
		return
	}
	for _, q := range s.lanes {
		q.Close()
	}
	s.state.Store(stripedSealed)
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (s *Striped[T]) Closed() bool { return s.state.Load() != stripedOpen }

// Enqueue inserts v through a pooled handle, returning false when the
// borrowed handle's lane is full or the queue is closed.
func (s *Striped[T]) Enqueue(v T) bool {
	h := s.pool.mustGet()
	// Deferred so a panic inside the operation returns the borrowed
	// handle instead of leaking it. Same on every pooled path below.
	defer s.pool.put(h)
	return h.Enqueue(v)
}

// Dequeue removes a value through a pooled handle, or returns
// ok=false after observing every lane empty.
func (s *Striped[T]) Dequeue() (v T, ok bool) {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.Dequeue()
}

// EnqueueBatch inserts up to len(vs) values through a pooled handle,
// returning how many were inserted. The batch lands in one lane, in
// order.
func (s *Striped[T]) EnqueueBatch(vs []T) int {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.EnqueueBatch(vs)
}

// DequeueBatch removes up to len(out) values through a pooled handle,
// returning how many were dequeued.
func (s *Striped[T]) DequeueBatch(out []T) int {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.DequeueBatch(out)
}

// EnqueueWait inserts v through a pooled handle, blocking while the
// borrowed handle's lane is full. Reports handle-cap exhaustion as an
// error rather than panicking.
func (s *Striped[T]) EnqueueWait(ctx context.Context, v T) error {
	h, err := s.pool.get()
	if err != nil {
		return err
	}
	defer s.pool.put(h)
	return h.EnqueueWait(ctx, v)
}

// DequeueWait removes a value through a pooled handle, blocking while
// every lane is empty; see StripedHandle.DequeueWait.
func (s *Striped[T]) DequeueWait(ctx context.Context) (T, error) {
	h, err := s.pool.get()
	if err != nil {
		var zero T
		return zero, err
	}
	defer s.pool.put(h)
	return h.DequeueWait(ctx)
}

// DequeueBlock is DequeueWait without a deadline.
func (s *Striped[T]) DequeueBlock() (T, error) { return s.DequeueWait(context.Background()) }

// Footprint returns the live bytes across all lanes; it moves only
// with the handle high-water mark.
func (s *Striped[T]) Footprint() int64 {
	var sum int64
	for _, q := range s.lanes {
		sum += q.Footprint()
	}
	return sum
}

// MaxOps returns the per-lane safe-operation bound (the binding limit,
// since each lane counts its own operations).
func (s *Striped[T]) MaxOps() uint64 { return s.lanes[0].MaxOps() }

// LiveHandles returns the number of currently registered handles.
func (s *Striped[T]) LiveHandles() int { return s.lanes[0].LiveHandles() }

// HandleHighWater returns the largest number of handles ever live at
// once.
func (s *Striped[T]) HandleHighWater() int { return s.lanes[0].HandleHighWater() }

// Stats aggregates slow-path statistics across all lanes.
func (s *Striped[T]) Stats() Stats {
	var out Stats
	for _, q := range s.lanes {
		st := q.Stats()
		out.SlowEnqueues += st.SlowEnqueues
		out.SlowDequeues += st.SlowDequeues
		out.Helps += st.Helps
	}
	return out
}
