package wcq

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"wcqueue/internal/core"
	"wcqueue/internal/lanedir"
	"wcqueue/internal/waitq"
)

// Striped is a sharded front-end over an elastic directory of
// independent wCQ rings ("lanes", DESIGN.md §7, §13). Every handle is
// bound to one lane: enqueues always target the handle's own lane,
// dequeues try it first and then steal from the other lanes, so the
// shared Tail/Head fetch-and-add — the scalability bottleneck of a
// single ring — is split W ways.
//
// W is no longer fixed: the lane set lives in an atomically-published
// directory (internal/lanedir) and a contention-feedback governor
// grows and shrinks it online within WithLaneBounds — per-lane
// entry-CAS failure counters and full-lane rejections push W up,
// sustained calm (and steal-heavy scans) pull it down. Resizes are
// invisible to the operation contract: a shrunk lane keeps serving
// bound producers and dequeue scans while it drains, retires only once
// unbound and empty (residuals from unregistered producers are handed
// off to an active lane exactly once), and a handle migrates lanes
// only between its own operations at its lane's drained witness — so
// the per-handle FIFO guarantee below holds ACROSS resizes. Manual
// Resize is available for tests and embedders; WithFixedLanes turns
// the governor off.
//
// Ordering contract: Striped is NOT a single FIFO. It is FIFO per
// handle — two values enqueued through the same handle are always
// dequeued in (linearization) order: while the handle stays on one
// lane its values share that lane's wait-free FIFO, and the handle
// only ever leaves a lane after every value it enqueued there has been
// claimed. Values from different handles may interleave arbitrarily,
// which is exactly the reordering a concurrent single queue already
// exhibits between producers. The handle-free methods borrow a per-P
// cached handle, so on a steady P they order like an explicit handle;
// goroutines that migrate Ps mid-stream (or need guaranteed
// per-goroutine order) should hold an explicit StripedHandle, and
// workloads that need a single total order should use Queue instead.
//
// Progress: every operation is wait-free in a quiescent directory
// (enqueue touches one lane; dequeue does at most one wait-free
// Dequeue per lane per scan). A concurrent resize can force a steal
// scan to restart, so formally operations are wait-free between
// resizes and lock-free across them; the governor resizes at most
// once per sampling window, and never while holding anything an
// operation waits on. Enqueue returns false only when the handle's
// lane is full; Dequeue returns false only after observing every lane
// empty — observations taken lane by lane, not atomically, so false is
// advisory under concurrent enqueues (see StripedHandle.Dequeue).
type Striped[T any] struct {
	dir  *lanedir.Dir[*core.Queue[T]]
	pool handlePool[StripedHandle[T]]

	laneCap int
	maxOps  uint64

	// Blocking layer (DESIGN.md §10). Waiters park at the striped
	// level, not per lane: a blocked dequeuer must be woken by an
	// enqueue into ANY lane, and the per-lane emptiness scan is not
	// linearizable — only the eventcount's arm-then-rescan protocol
	// (DequeueWait) makes the parking decision sound. Close delegates
	// the enqueue/close linearization to the lanes (each lane's own
	// Close quiesces its in-flight enqueues), so the striped state is
	// purely a fail-fast gate plus the sealed marker for drains.
	notEmpty waitq.EventCount
	notFull  waitq.EventCount
	state    atomic.Uint32
}

// Striped close states, as in core: enqueues fail from stripedClosing
// on; only stripedSealed (published after in-flight enqueues quiesce)
// makes an all-lanes-empty scan conclusive.
const (
	stripedOpen uint32 = iota
	stripedClosing
	stripedSealed
)

// handleFlushOps is how many handle-local operations accumulate before
// a flush into the directory's sampling window — the governor's
// heartbeat, amortized to one atomic Add per this many ops.
const handleFlushOps = 256

// StripedHandle is a registered per-goroutine token of a Striped
// queue. It carries the lane binding, a cached directory view, and
// lazily-registered per-lane core handles for the lanes its steals
// have touched. Must not be shared between concurrently running
// goroutines.
type StripedHandle[T any] struct {
	s    *Striped[T]
	slot *lanedir.Slot[*core.Queue[T]]
	view *lanedir.View[*core.Queue[T]]
	own  *core.Handle // registration on the bound lane
	lhs  []laneHandle[T]
	tid  int // lanedir binder tid: the hazard slot steals publish through
	rot  uint
	opn  uint32
	evn  uint32
	// migrating marks a handle whose lane is draining: it keeps
	// enqueueing there (preserving its FIFO stream) and re-checks the
	// drained witness every operation until it can rebind.
	migrating bool
	// w is the parking token for the blocking operations. Handle-local.
	w *waitq.Waiter
}

// laneHandle caches one lane's core registration, keyed by lane
// identity so directory churn (retire, standby, reactivation) never
// invalidates it silently.
type laneHandle[T any] struct {
	lane *core.Queue[T]
	h    *core.Handle
}

// waiter returns the handle's parking token, allocated on first use.
func (h *StripedHandle[T]) waiter() *waitq.Waiter {
	if h.w == nil {
		h.w = waitq.NewWaiter()
	}
	return h.w
}

// NewStriped creates a striped queue starting at `stripes` lanes of up
// to 2^order values each. The lane count then floats within
// WithLaneBounds (default [1, max(stripes, GOMAXPROCS)]) under the
// resize governor unless WithFixedLanes pins it. Handles register
// dynamically, as with New.
func NewStriped[T any](order uint, stripes int, opts ...Option) (*Striped[T], error) {
	if stripes < 1 {
		return nil, fmt.Errorf("wcq: stripes %d out of range [1, ∞)", stripes)
	}
	c := buildConfig(opts)
	s := &Striped[T]{laneCap: 1 << order}
	laneOpts := lanedir.Ops[*core.Queue[T]]{
		New: func() (*core.Queue[T], error) {
			return core.NewQueue[T](order, c.core)
		},
		Drain:      s.drainLane,
		Drained:    func(q *core.Queue[T]) bool { return q.Drained() },
		Contention: func(q *core.Queue[T]) uint64 { return q.ContentionEvents() },
		Ptr:        func(q *core.Queue[T]) unsafe.Pointer { return unsafe.Pointer(q) },
		OnMaintain: s.evictStale,
	}
	dir, err := lanedir.New(laneOpts, lanedirConfig(stripes, c))
	if err != nil {
		return nil, fmt.Errorf("wcq: %w", err)
	}
	s.dir = dir
	s.maxOps = dir.View().Active()[0].Lane().MaxOps()
	s.pool.init(s.Register, func(h *StripedHandle[T]) { h.Unregister() })
	return s, nil
}

// lanedirConfig derives the directory sizing shared by Striped and
// DirectStriped: bounds default to [1, max(stripes, GOMAXPROCS)], the
// standby pool holds up to the max lane count, and the binder cap
// follows WithMaxHandles.
func lanedirConfig(stripes int, c config) lanedir.Config {
	min, max := c.laneMin, c.laneMax
	if min < 1 {
		min = 1
	}
	if max < 1 {
		max = runtime.GOMAXPROCS(0)
	}
	if max < stripes {
		max = stripes
	}
	if min > max {
		min = max
	}
	binders := c.core.MaxHandles
	if binders <= 0 {
		binders = 1 << 16
	}
	return lanedir.Config{
		Initial:    stripes,
		Min:        min,
		Max:        max,
		Auto:       !c.fixedLanes,
		StandbyCap: max,
		MaxBinders: binders,
	}
}

// MustStriped is NewStriped that panics on error.
func MustStriped[T any](order uint, stripes int, opts ...Option) *Striped[T] {
	s, err := NewStriped[T](order, stripes, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// drainLane is the directory's residual handoff (Ops.Drain): invoked
// under the maintenance mutex on a draining lane with zero binds, so
// this call is the lane's ONLY producer — concurrent stealers may
// still dequeue, which only helps. Values that do not fit in the
// target go back into `from` (whose capacity our own dequeues just
// freed), so no value is ever lost; a false return parks the lane for
// the next maintenance pass.
func (s *Striped[T]) drainLane(from, into *core.Queue[T]) bool {
	fh, err := from.Register()
	if err != nil {
		return false
	}
	defer from.Unregister(fh)
	ih, err := into.Register()
	if err != nil {
		return false
	}
	defer into.Unregister(ih)
	var buf [32]T
	for {
		n := from.DequeueBatch(fh, buf[:])
		if n == 0 {
			return from.Drained()
		}
		m := into.EnqueueBatch(ih, buf[:n])
		s.notEmpty.SignalN(m)
		if m < n {
			// Target full: put the remainder back. The put-back cannot
			// fail permanently — we freed n ≥ n−m slots, nobody else
			// enqueues here, and the lane is not closed (Close takes
			// the same mutex this drain holds).
			rest := buf[m:n]
			for len(rest) > 0 {
				k := from.EnqueueBatch(fh, rest)
				rest = rest[k:]
				if k == 0 {
					runtime.Gosched()
				}
			}
			return false
		}
	}
}

// evictStale is the governor's per-P cache sweep (Ops.OnMaintain): a
// parked implicit handle is the one binder that cannot migrate off a
// draining lane on its own (it only runs during a borrow), so the
// sweep unregisters any parked handle bound to a draining lane,
// unpinning the lane; the next implicit call on that P registers
// fresh against an active lane.
func (s *Striped[T]) evictStale() {
	s.pool.evict(func(h *StripedHandle[T]) bool {
		return h.slot.Draining()
	})
}

// Register claims a handle bound to the least-bound active lane.
func (s *Striped[T]) Register() (*StripedHandle[T], error) {
	tid, err := s.dir.Register()
	if err != nil {
		return nil, err
	}
	slot := s.dir.Bind()
	lh, err := slot.Lane().Register()
	if err != nil {
		s.dir.Unbind(slot)
		s.dir.Release(tid)
		return nil, err
	}
	h := &StripedHandle[T]{
		s:    s,
		slot: slot,
		view: s.dir.View(),
		own:  lh,
		tid:  tid,
		lhs:  []laneHandle[T]{{slot.Lane(), lh}},
	}
	return h, nil
}

// Unregister releases the handle's lane binding, its per-lane core
// registrations, and its binder tid (hazard slots cleared).
func (h *StripedHandle[T]) Unregister() {
	for _, e := range h.lhs {
		e.lane.Unregister(e.h)
	}
	h.lhs = nil
	h.s.dir.Unbind(h.slot)
	h.s.dir.Release(h.tid)
}

// Lane returns the handle's current lane binding as an index into the
// active directory, or -1 while its lane is draining (test and
// telemetry hook).
func (h *StripedHandle[T]) Lane() int {
	for i, s := range h.s.dir.View().Active() {
		if s == h.slot {
			return i
		}
	}
	return -1
}

// pre is the per-operation resync gate: one cached-pointer compare in
// steady state. It runs every operation while migrating, because only
// the drained witness — not a directory change — licenses the rebind.
// wcq:noalloc
func (h *StripedHandle[T]) pre() {
	if h.migrating || h.view != h.s.dir.View() {
		h.resync()
	}
}

// resync refreshes the handle after a directory change. The FIFO-
// preserving migration rule lives here: a handle whose lane is
// draining keeps enqueueing to it until the lane's Drained witness
// fires — at that instant every value the handle ever enqueued there
// has been claimed in linearization order, so rebinding to a fresh
// lane cannot reorder its stream. Rebind and witness check both happen
// between the handle's own operations, which is the contract the
// directory's retire path depends on.
func (h *StripedHandle[T]) resync() {
	s := h.s
	if h.slot.Draining() {
		if !h.slot.Lane().Drained() {
			h.migrating = true
			h.view = s.dir.View()
			return
		}
		ns := s.dir.Bind()
		lh := h.laneHandle(ns.Lane())
		if lh == nil {
			// Could not register on the new lane (per-lane handle cap);
			// stay on the draining lane — it remains fully functional —
			// and retry at the next operation.
			s.dir.Unbind(ns)
			h.migrating = true
			h.view = s.dir.View()
			return
		}
		s.dir.Unbind(h.slot)
		h.slot, h.own = ns, lh
		h.migrating = false
	}
	v := s.dir.View()
	h.view = v
	h.prune(v)
}

// laneHandle returns the handle's registration on lane, registering on
// first touch. Returns nil when the lane's handle cap is exhausted
// (the caller skips that lane).
// wcq:noalloc
func (h *StripedHandle[T]) laneHandle(lane *core.Queue[T]) *core.Handle {
	for _, e := range h.lhs {
		if e.lane == lane {
			return e.h
		}
	}
	lh, err := lane.Register()
	if err != nil {
		return nil
	}
	// wcq:alloc-ok once per (handle, lane) pair: lane registration is an epoch event, and the cache hit above is the per-op path
	h.lhs = append(h.lhs, laneHandle[T]{lane, lh})
	return lh
}

// prune drops registrations on lanes that left the directory (retired
// to standby or dropped); a lane that returns later re-registers on
// first touch.
func (h *StripedHandle[T]) prune(v *lanedir.View[*core.Queue[T]]) {
	kept := h.lhs[:0]
	for _, e := range h.lhs {
		if e.lane == h.slot.Lane() || v.Contains(e.lane) {
			kept = append(kept, e)
			continue
		}
		e.lane.Unregister(e.h)
	}
	for i := len(kept); i < len(h.lhs); i++ {
		h.lhs[i] = laneHandle[T]{}
	}
	h.lhs = kept
}

// tick is the handle-local op accounting: flushed into the directory
// every handleFlushOps operations, where it may trigger a governor
// sample. contended marks full-lane rejections and entry collisions
// the front-end itself observed.
// wcq:noalloc
func (h *StripedHandle[T]) tick(contended bool) {
	if contended {
		h.evn++
	}
	h.opn++
	if h.opn >= handleFlushOps {
		s := h.s
		if h.evn > 0 {
			s.dir.NoteContention(uint64(h.evn))
			h.evn = 0
		}
		n := uint64(h.opn)
		h.opn = 0
		s.dir.NoteOps(n)
	}
}

// Enqueue inserts v into the handle's lane, returning false when that
// lane is full or the queue is closed. Staying on one lane is what
// preserves per-handle FIFO; callers that prefer load spilling over
// ordering can Register several handles. Wait-free; no hazard
// publication — the handle's bind is what keeps its lane alive.
// wcq:noalloc
func (h *StripedHandle[T]) Enqueue(v T) bool {
	s := h.s
	if s.state.Load() != stripedOpen {
		return false // fail fast; the lane's own close check is the authority
	}
	h.pre()
	ok := h.slot.Lane().Enqueue(h.own, v)
	if ok {
		s.notEmpty.Signal()
	}
	h.tick(!ok)
	return ok
}

// Dequeue removes a value, preferring the handle's own lane and
// stealing from the others starting at a rotating lane. The rotation
// (advanced once per steal scan) is what keeps high-index lanes from
// starving when consumers cluster on low indices: with a fixed
// own-lane start, a lane just past a busy consumer's index could wait
// behind every other lane on every scan. Returns ok=false only after
// every lane reported empty during the scan. That scan is NOT a
// linearizable emptiness check: the per-lane observations happen at
// different instants, so a concurrent enqueue landing in a lane the
// scan has already passed can make Dequeue return false while the
// queue was never globally empty at any single point in time. Callers
// polling a striped queue must treat false as "probably empty" and
// retry, exactly as they would with any work-stealing deque.
// Wait-free between resizes.
// wcq:noalloc
func (h *StripedHandle[T]) Dequeue() (v T, ok bool) {
	s := h.s
	h.pre()
	if v, ok := h.slot.Lane().Dequeue(h.own); ok {
		s.notFull.Signal()
		h.tick(false)
		return v, true
	}
	return h.steal()
}

// steal scans the foreign lanes (active and draining) for a value.
// Each foreign lane is published in the handle's hazard slot before
// use and the directory pointer re-checked after: an unchanged
// directory proves the retire path's hazard scan will see the
// publication, so the lane cannot be recycled mid-dequeue; a changed
// one restarts the scan on the fresh view (DESIGN.md §13).
// wcq:noalloc
func (h *StripedHandle[T]) steal() (v T, ok bool) {
	s := h.s
restart:
	view := h.view
	slots := view.Slots()
	w := len(slots)
	if w > 1 {
		r := int(h.rot)
		h.rot++
		for i := 0; i < w; i++ {
			c := slots[(r+i)%w]
			if c == h.slot {
				continue
			}
			lane := c.Lane()
			s.dir.Protect(h.tid, lane)
			if s.dir.View() != view {
				s.dir.ClearHazard(h.tid)
				h.resync()
				goto restart
			}
			lh := h.laneHandle(lane)
			if lh == nil {
				continue
			}
			if vv, ok := lane.Dequeue(lh); ok {
				s.dir.ClearHazard(h.tid)
				s.notFull.Signal()
				s.dir.NoteSteals(1)
				h.tick(false)
				return vv, true
			}
		}
		s.dir.ClearHazard(h.tid)
	}
	h.tick(false)
	return v, false
}

// EnqueueBatch inserts up to len(vs) values into the handle's lane
// with batched ring reservations, returning how many were inserted
// (0 when the queue is closed). Wait-free.
// wcq:noalloc
func (h *StripedHandle[T]) EnqueueBatch(vs []T) int {
	s := h.s
	if s.state.Load() != stripedOpen {
		return 0 // fail fast; the lane's own close check is the authority
	}
	h.pre()
	n := h.slot.Lane().EnqueueBatch(h.own, vs)
	s.notEmpty.SignalN(n)
	h.tick(n < len(vs))
	return n
}

// DequeueBatch removes up to len(out) values, draining the handle's
// own lane first and stealing the remainder from the other lanes
// (rotating start, hazard-protected; see Dequeue). Returns how many
// were dequeued. Wait-free between resizes.
// wcq:noalloc
func (h *StripedHandle[T]) DequeueBatch(out []T) int {
	s := h.s
	h.pre()
	n := h.slot.Lane().DequeueBatch(h.own, out)
	if n < len(out) {
		n += h.stealBatch(out[n:])
	}
	s.notFull.SignalN(n)
	h.tick(false)
	return n
}

// stealBatch is steal for the batched path.
// wcq:noalloc
func (h *StripedHandle[T]) stealBatch(out []T) int {
	s := h.s
	n := 0
restart:
	view := h.view
	slots := view.Slots()
	w := len(slots)
	if w > 1 {
		r := int(h.rot)
		h.rot++
		for i := 0; i < w && n < len(out); i++ {
			c := slots[(r+i)%w]
			if c == h.slot {
				continue
			}
			lane := c.Lane()
			s.dir.Protect(h.tid, lane)
			if s.dir.View() != view {
				s.dir.ClearHazard(h.tid)
				h.resync()
				goto restart
			}
			lh := h.laneHandle(lane)
			if lh == nil {
				continue
			}
			if k := lane.DequeueBatch(lh, out[n:]); k > 0 {
				n += k
				s.dir.NoteSteals(uint64(k))
			}
		}
		s.dir.ClearHazard(h.tid)
	}
	return n
}

// EnqueueWait inserts v into the handle's lane, blocking while that
// lane is full. Returns nil on success, ErrClosed if the queue is (or
// becomes) closed first, or ctx.Err() if the context is done. The
// waiter parks on the queue-wide notFull eventcount and is woken by a
// dequeue from any lane. Enqueue-waiters have per-lane predicates, so
// a wakeup token can land on a producer whose own lane is still full;
// that producer must pass the token on (see the post-wake retry
// below), or the producer whose lane actually freed would sleep
// forever on a queue with a free slot.
func (h *StripedHandle[T]) EnqueueWait(ctx context.Context, v T) error {
	s := h.s
	// An already-expired context must not publish (the no-phantom-
	// delivery contract exact accepted/shed accounting rests on); after
	// a successful Enqueue the value is in regardless of cancellation.
	if err := ctx.Err(); err != nil {
		return err
	}
	if h.Enqueue(v) {
		return nil
	}
	if s.state.Load() != stripedOpen {
		return ErrClosed
	}
	for i := 0; waitq.Spin(i); i++ {
		if h.Enqueue(v) {
			return nil
		}
		if s.state.Load() != stripedOpen {
			return ErrClosed
		}
	}
	w := h.waiter()
	for {
		s.notFull.Prepare(w)
		if h.Enqueue(v) {
			s.notFull.Cancel(w)
			return nil
		}
		if s.state.Load() != stripedOpen {
			s.notFull.Cancel(w)
			return ErrClosed
		}
		if err := s.notFull.Wait(ctx, w); err != nil {
			return err
		}
		// Woken: the freed slot may be in another parked producer's
		// lane, not ours. Retry once; on failure forward the token
		// BEFORE re-arming — we are not armed at this instant, so the
		// Signal cannot hand the token straight back to us, and with
		// no other waiter armed it drops harmlessly. Tokens never
		// multiply (one consumed, at most one forwarded), so there is
		// no livelock — just a bounded relay until the token reaches
		// a producer that can use it or no one is parked.
		if h.Enqueue(v) {
			return nil
		}
		if s.state.Load() != stripedOpen {
			return ErrClosed
		}
		s.notFull.Signal()
	}
}

// DequeueWait removes a value, blocking while every lane is empty.
// Returns the value, ErrClosed once the queue is closed and drained,
// or ctx.Err() if the context is done first.
//
// The lane-by-lane emptiness scan of Dequeue is NOT linearizable: a
// concurrent enqueue can land in a lane the scan already passed. A
// naive "scan, then park" would therefore strand the consumer — the
// producer's wakeup can fire between the scan and the park, and its
// value sits in a lane the scan reported empty. The eventcount closes
// that race: the waiter is armed FIRST (Prepare), the scan runs
// AGAIN afterwards, and only then does it park. Any enqueue that
// lands after the re-scan started finds the armed waiter and wakes
// it; any enqueue before it is found by the re-scan itself.
func (h *StripedHandle[T]) DequeueWait(ctx context.Context) (T, error) {
	s := h.s
	// Expired-context pre-check: return ctx.Err() before consuming
	// anything, so no value is dequeued into an error return.
	if err := ctx.Err(); err != nil {
		var zero T
		return zero, err
	}
	if v, ok := h.Dequeue(); ok {
		return v, nil
	}
	for i := 0; waitq.Spin(i); i++ {
		if v, ok := h.Dequeue(); ok {
			return v, nil
		}
		if s.state.Load() == stripedSealed {
			break
		}
	}
	w := h.waiter()
	for {
		s.notEmpty.Prepare(w)
		// Re-scan after arming: the pre-park double-check that fixes
		// the striped lost-wakeup hazard.
		if v, ok := h.Dequeue(); ok {
			s.notEmpty.Cancel(w)
			return v, nil
		}
		if s.state.Load() == stripedSealed {
			s.notEmpty.Cancel(w)
			// One full scan after observing sealed is conclusive: no
			// enqueue can land past the seal, the directory is frozen
			// (Close holds the maintenance mutex last), so
			// all-lanes-empty is now a stable property.
			if v, ok := h.Dequeue(); ok {
				return v, nil
			}
			var zero T
			return zero, ErrClosed
		}
		if err := s.notEmpty.Wait(ctx, w); err != nil {
			var zero T
			return zero, err
		}
	}
}

// DequeueBlock is DequeueWait without a deadline.
func (h *StripedHandle[T]) DequeueBlock() (T, error) {
	return h.DequeueWait(context.Background())
}

// Close closes the queue: subsequent enqueues fail on every lane,
// blocked enqueuers return ErrClosed, and dequeuers drain the values
// remaining across all lanes before observing ErrClosed. The striped
// state is only the fail-fast gate; the linearization against
// in-flight enqueues is delegated to the lanes — closing each lane
// quiesces its enqueuers (core's ActiveFlag protocol), so once every
// lane is sealed, a full all-lanes-empty scan is conclusive and
// stripedSealed is published. Closing the lanes goes through the
// directory's Close, whose mutex orders it after any in-flight
// residual drain and freezes the lane set permanently — no lane can
// appear, retire, or be recycled after the seal. Idempotent.
func (s *Striped[T]) Close() {
	if !s.state.CompareAndSwap(stripedOpen, stripedClosing) {
		for s.state.Load() != stripedSealed {
			runtime.Gosched()
		}
		return
	}
	s.dir.Close(func(q *core.Queue[T]) { q.Close() })
	s.state.Store(stripedSealed)
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (s *Striped[T]) Closed() bool { return s.state.Load() != stripedOpen }

// Stripes returns the current active lane count W.
func (s *Striped[T]) Stripes() int { return s.dir.Lanes() }

// DrainingLanes returns the lanes still draining toward retirement
// after a shrink (telemetry and test hook).
func (s *Striped[T]) DrainingLanes() int { return s.dir.DrainingLanes() }

// Resize sets the active lane count to n (≥ 1), growing from the
// retired-lane standby pool before allocating and shrinking by
// draining lanes out through the retire protocol. With the governor
// on (the default), a manual resize is a hint the governor may later
// override. Returns an error on a closed queue.
func (s *Striped[T]) Resize(n int) error { return s.dir.Resize(n) }

// Maintain runs one blocking directory maintenance pass — residual
// drains, retirement, per-P cache sweep, and (unless WithFixedLanes)
// one governor decision. Operations pump this automatically every few
// hundred ops; it is exported for tests and for embedders that want
// deterministic housekeeping points.
func (s *Striped[T]) Maintain() { s.dir.Maintain() }

// Cap returns the total capacity across the active lanes.
func (s *Striped[T]) Cap() int { return s.dir.Lanes() * s.laneCap }

// Enqueue inserts v through a per-P cached handle, returning false
// when the borrowed handle's lane is full or the queue is closed.
// wcq:noalloc
func (s *Striped[T]) Enqueue(v T) bool {
	h := s.pool.mustGet()
	// Deferred so a panic inside the operation returns the borrowed
	// handle instead of leaking it. Same on every pooled path below.
	defer s.pool.put(h)
	return h.Enqueue(v)
}

// Dequeue removes a value through a per-P cached handle, or returns
// ok=false after observing every lane empty.
// wcq:noalloc
func (s *Striped[T]) Dequeue() (v T, ok bool) {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.Dequeue()
}

// EnqueueBatch inserts up to len(vs) values through a per-P cached
// handle, returning how many were inserted. The batch lands in one
// lane, in order.
// wcq:noalloc
func (s *Striped[T]) EnqueueBatch(vs []T) int {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.EnqueueBatch(vs)
}

// DequeueBatch removes up to len(out) values through a per-P cached
// handle, returning how many were dequeued.
// wcq:noalloc
func (s *Striped[T]) DequeueBatch(out []T) int {
	h := s.pool.mustGet()
	defer s.pool.put(h)
	return h.DequeueBatch(out)
}

// EnqueueWait inserts v through a per-P cached handle, blocking while
// the borrowed handle's lane is full. Reports handle-cap exhaustion as
// an error rather than panicking.
func (s *Striped[T]) EnqueueWait(ctx context.Context, v T) error {
	h, err := s.pool.get()
	if err != nil {
		return err
	}
	defer s.pool.put(h)
	return h.EnqueueWait(ctx, v)
}

// DequeueWait removes a value through a per-P cached handle, blocking
// while every lane is empty; see StripedHandle.DequeueWait.
func (s *Striped[T]) DequeueWait(ctx context.Context) (T, error) {
	h, err := s.pool.get()
	if err != nil {
		var zero T
		return zero, err
	}
	defer s.pool.put(h)
	return h.DequeueWait(ctx)
}

// DequeueBlock is DequeueWait without a deadline.
func (s *Striped[T]) DequeueBlock() (T, error) { return s.DequeueWait(context.Background()) }

// Footprint returns the live bytes across the directory's lanes
// (active and draining); it moves with the lane count and the handle
// high-water mark.
func (s *Striped[T]) Footprint() int64 {
	var sum int64
	for _, sl := range s.dir.View().Slots() {
		sum += sl.Lane().Footprint()
	}
	return sum
}

// MaxOps returns the per-lane safe-operation bound (the binding limit,
// since each lane counts its own operations).
func (s *Striped[T]) MaxOps() uint64 { return s.maxOps }

// LiveHandles returns the number of currently registered striped
// handles (implicit ones included while cached).
func (s *Striped[T]) LiveHandles() int { return s.dir.Binders() }

// HandleHighWater returns the largest number of striped handles ever
// live at once.
func (s *Striped[T]) HandleHighWater() int { return s.dir.BinderHighWater() }

// Stats aggregates slow-path statistics across the directory's lanes
// and reports the elastic directory's telemetry. Retired lanes' counts
// leave with them, so the slow-path fields are a rate probe, not a
// lifetime ledger; the lane telemetry (Lanes/LaneGrows/LaneShrinks/
// Steals) is cumulative and survives lane churn.
func (s *Striped[T]) Stats() Stats {
	var out Stats
	for _, sl := range s.dir.View().Slots() {
		st := sl.Lane().Stats()
		out.SlowEnqueues += st.SlowEnqueues
		out.SlowDequeues += st.SlowDequeues
		out.Helps += st.Helps
	}
	tel := s.dir.Telemetry()
	out.Lanes = tel.Lanes
	out.LaneGrows = tel.Grows
	out.LaneShrinks = tel.Shrinks
	out.Steals = tel.Steals
	out.EnqWaiters = s.notFull.Waiters()
	out.DeqWaiters = s.notEmpty.Waiters()
	out.Waits = s.notFull.Waits() + s.notEmpty.Waits()
	out.Wakes = s.notFull.Wakes() + s.notEmpty.Wakes()
	return out
}
