package wcq

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/internal/check"
)

func TestStripedBasics(t *testing.T) {
	s := MustStriped[int](6, 4)
	if s.Stripes() != 4 {
		t.Fatalf("Stripes() = %d", s.Stripes())
	}
	if s.Cap() != 4*64 {
		t.Fatalf("Cap() = %d, want %d", s.Cap(), 4*64)
	}
	h, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	for i := 0; i < 10; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := 0; i < 10; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty striped queue yielded a value")
	}
}

// TestStripedHandleFree drives a striped queue through the implicit
// API: values round-trip and the pooled handles register lazily.
func TestStripedHandleFree(t *testing.T) {
	s := MustStriped[int](6, 4)
	for i := 0; i < 10; i++ {
		if !s.Enqueue(i) {
			t.Fatalf("handle-free enqueue %d failed", i)
		}
	}
	got := map[int]bool{}
	for i := 0; i < 10; i++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatalf("handle-free dequeue %d failed", i)
		}
		got[v] = true
	}
	if len(got) != 10 {
		t.Fatalf("round-tripped %d distinct values, want 10", len(got))
	}
	if _, ok := s.Dequeue(); ok {
		t.Fatal("empty striped queue yielded a value")
	}
}

func TestStripedRejectsBadConfig(t *testing.T) {
	if _, err := NewStriped[int](6, 0); err == nil {
		t.Fatal("stripes=0 accepted")
	}
	if _, err := NewStriped[int](0, 2); err == nil {
		t.Fatal("order=0 accepted")
	}
}

// TestStripedLaneAffinityAndStealing verifies that handles land on
// distinct lanes round-robin and that a dequeuer drains values parked
// on other handles' lanes.
func TestStripedLaneAffinityAndStealing(t *testing.T) {
	s := MustStriped[int](6, 4)
	hs := make([]*StripedHandle[int], 8)
	for i := range hs {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	lanes := map[int]int{}
	for _, h := range hs {
		lanes[h.Lane()]++
	}
	if len(lanes) != 4 {
		t.Fatalf("8 handles spread over %d lanes, want 4", len(lanes))
	}
	for l, n := range lanes {
		if n != 2 {
			t.Fatalf("lane %d has %d handles, want 2 (least-bound balancing)", l, n)
		}
	}
	// Park one value on every lane, then drain it all from one handle.
	for i, h := range hs[:4] {
		if !h.Enqueue(100 + i) {
			t.Fatal("enqueue failed")
		}
	}
	got := map[int]bool{}
	for i := 0; i < 4; i++ {
		v, ok := hs[7].Dequeue()
		if !ok {
			t.Fatalf("steal %d failed", i)
		}
		got[v] = true
	}
	if len(got) != 4 {
		t.Fatalf("stole %d distinct values, want 4", len(got))
	}
	if _, ok := hs[0].Dequeue(); ok {
		t.Fatal("drained queue yielded a value")
	}
}

// TestStripedLaneRecycling is the churn-skew regression test: lane
// binding follows live occupancy (least-bound active lane), so
// register/unregister storms keep the surviving population balanced
// instead of concentrating it on a few lanes.
func TestStripedLaneRecycling(t *testing.T) {
	const stripes = 4
	// Fixed lanes so the churn below exercises binding, not the governor.
	s := MustStriped[int](6, stripes, WithFixedLanes())
	// Churn: register/unregister pairs must not skew lane assignment
	// for the stable population that follows.
	for i := 0; i < 1000; i++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		h.Unregister()
	}
	hs := make([]*StripedHandle[int], 2*stripes)
	lanes := map[int]int{}
	for i := range hs {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
		lanes[h.Lane()]++
	}
	for l := 0; l < stripes; l++ {
		if lanes[l] != 2 {
			t.Fatalf("after churn, lane occupancy %v is skewed (lane %d has %d)", lanes, l, lanes[l])
		}
	}
	// Interior release: the freed lane is now least-bound, so the next
	// registration lands on it.
	freed := hs[3].Lane()
	hs[3].Unregister()
	h, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	if h.Lane() != freed {
		t.Fatalf("recycled registration got lane %d, want freed lane %d", h.Lane(), freed)
	}
}

// TestStripedEnqueueFullLane: an enqueue only fails when the handle's
// own lane is full, independent of other lanes' occupancy.
func TestStripedEnqueueFullLane(t *testing.T) {
	s := MustStriped[int](2, 2) // lanes of 4
	h, _ := s.Register()
	for i := 0; i < 4; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d failed below lane capacity", i)
		}
	}
	if h.Enqueue(99) {
		t.Fatal("full lane accepted a value")
	}
	// A second handle (least-bound: the other lane) still has room.
	h2, _ := s.Register()
	if h2.Lane() == h.Lane() {
		t.Fatal("least-bound binding assigned the same lane twice")
	}
	if !h2.Enqueue(5) {
		t.Fatal("other lane rejected a value")
	}
}

func TestStripedBatch(t *testing.T) {
	s := MustStriped[uint64](6, 3)
	h, _ := s.Register()
	in := []uint64{10, 11, 12, 13, 14}
	if n := h.EnqueueBatch(in); n != 5 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]uint64, 5)
	if n := h.DequeueBatch(out); n != 5 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i, v := range out {
		if v != in[i] {
			t.Fatalf("out[%d] = %d, want %d", i, v, in[i])
		}
	}
}

// TestStripedBatchSteals: a batched dequeue gathers values across
// lanes when its own lane runs dry.
func TestStripedBatchSteals(t *testing.T) {
	s := MustStriped[uint64](6, 4)
	hs := make([]*StripedHandle[uint64], 4)
	for i := range hs {
		hs[i], _ = s.Register()
	}
	for i, h := range hs {
		if n := h.EnqueueBatch([]uint64{uint64(i * 10), uint64(i*10 + 1)}); n != 2 {
			t.Fatalf("lane %d batch enqueue = %d", i, n)
		}
	}
	out := make([]uint64, 8)
	if n := hs[0].DequeueBatch(out); n != 8 {
		t.Fatalf("cross-lane batch dequeue = %d, want 8", n)
	}
	seen := map[uint64]bool{}
	for _, v := range out {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("batch steal returned %d distinct values, want 8", len(seen))
	}
}

func TestStripedAccessors(t *testing.T) {
	s := MustStriped[uint64](6, 4)
	if s.Footprint() <= 0 {
		t.Fatalf("Footprint() = %d", s.Footprint())
	}
	single := Must[uint64](6)
	if got, want := s.Footprint(), 4*single.Footprint(); got != want {
		t.Fatalf("striped footprint %d, want 4×single = %d", got, want)
	}
	if s.MaxOps() == 0 || s.MaxOps() != single.MaxOps() {
		t.Fatalf("MaxOps() = %d, want per-lane bound %d", s.MaxOps(), single.MaxOps())
	}
	st := s.Stats()
	if st.SlowEnqueues != 0 || st.SlowDequeues != 0 || st.Helps != 0 {
		t.Fatalf("fresh queue has nonzero stats: %+v", st)
	}
}

// TestStripedConcurrentMPMC: per-handle FIFO under concurrency — the
// standard checker's per-producer order condition.
func TestStripedConcurrentMPMC(t *testing.T) {
	const producers, consumers = 4, 4
	per := uint64(8000)
	if testing.Short() {
		per = 800
	}
	s := MustStriped[uint64](10, 3)
	total := per * producers
	streams := make([][]uint64, consumers)
	var wg sync.WaitGroup
	var consumed sync.WaitGroup
	consumed.Add(int(total))

	for c := 0; c < consumers; c++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int, h *StripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			budget := total / consumers
			if c == 0 {
				budget += total % consumers
			}
			local := make([]uint64, 0, budget)
			for uint64(len(local)) < budget {
				v, ok := h.Dequeue()
				if !ok {
					runtime.Gosched()
					continue
				}
				local = append(local, v)
				consumed.Done()
			}
			streams[c] = local
		}(c, h)
	}
	for p := 0; p < producers; p++ {
		h, err := s.Register()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *StripedHandle[uint64]) {
			defer wg.Done()
			defer h.Unregister()
			for seq := uint64(0); seq < per; seq++ {
				for !h.Enqueue(check.Encode(p, seq)) {
					runtime.Gosched()
				}
			}
		}(p, h)
	}
	wg.Wait()
	consumed.Wait()
	if err := check.Verify(streams, producers, per).Err(); err != nil {
		t.Fatal(err)
	}
}
