package wcq

import "testing"

// Lane-telemetry tests (PR 8 satellite, ROADMAP item 3: "Resize is
// exported but unobserved"): the Stats lane fields must move when the
// directory is forcibly resized and when dequeues steal across lanes,
// on both striped front-ends.

func TestStatsLaneTelemetryUnderResize(t *testing.T) {
	s := MustStriped[int](6, 2, WithLaneBounds(1, 8), WithFixedLanes())
	if st := s.Stats(); st.Lanes != 2 || st.LaneGrows != 0 || st.LaneShrinks != 0 {
		t.Fatalf("fresh stats: %+v", st)
	}
	if err := s.Resize(6); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Lanes != 6 || st.LaneGrows != 1 {
		t.Fatalf("after grow: Lanes=%d LaneGrows=%d", st.Lanes, st.LaneGrows)
	}
	if err := s.Resize(1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Lanes != 1 || st.LaneGrows != 1 || st.LaneShrinks != 1 {
		t.Fatalf("after shrink: Lanes=%d LaneGrows=%d LaneShrinks=%d",
			st.Lanes, st.LaneGrows, st.LaneShrinks)
	}
}

func TestDirectStatsLaneTelemetryUnderResize(t *testing.T) {
	s, err := NewDirectStriped[uint32](6, 2, WithLaneBounds(1, 8), WithFixedLanes())
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Lanes != 2 || st.LaneGrows != 0 || st.LaneShrinks != 0 {
		t.Fatalf("fresh stats: %+v", st)
	}
	if err := s.Resize(5); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Lanes != 5 || st.LaneGrows != 1 {
		t.Fatalf("after grow: Lanes=%d LaneGrows=%d", st.Lanes, st.LaneGrows)
	}
	if err := s.Resize(2); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Lanes != 2 || st.LaneShrinks != 1 {
		t.Fatalf("after shrink: Lanes=%d LaneShrinks=%d", st.Lanes, st.LaneShrinks)
	}
}

func TestStatsStealTelemetry(t *testing.T) {
	s := MustStriped[int](6, 2, WithFixedLanes())
	h1, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Unregister()
	h2, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Unregister()
	if h1.Lane() == h2.Lane() {
		t.Fatalf("handles share lane %d; least-bound Bind should split them", h1.Lane())
	}
	if !h1.Enqueue(7) {
		t.Fatal("enqueue failed")
	}
	// h2 is bound to the other lane, so its dequeue must steal.
	if v, ok := h2.Dequeue(); !ok || v != 7 {
		t.Fatalf("steal dequeue got (%d,%v)", v, ok)
	}
	if st := s.Stats(); st.Steals == 0 {
		t.Fatal("cross-lane dequeue did not move Stats.Steals")
	}
}

func TestDirectStatsStealTelemetry(t *testing.T) {
	s, err := NewDirectStriped[uint32](6, 2, WithFixedLanes())
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Unregister()
	h2, err := s.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Unregister()
	if h1.Lane() == h2.Lane() {
		t.Fatalf("handles share lane %d; least-bound Bind should split them", h1.Lane())
	}
	if !h1.Enqueue(7) {
		t.Fatal("enqueue failed")
	}
	if v, ok := h2.Dequeue(); !ok || v != 7 {
		t.Fatalf("steal dequeue got (%d,%v)", v, ok)
	}
	if st := s.Stats(); st.Steals == 0 {
		t.Fatal("cross-lane dequeue did not move Stats.Steals")
	}
}
