package wcq

import (
	"context"

	"wcqueue/internal/unbounded"
)

// Unbounded is an unbounded MPMC FIFO queue built from linked wCQ
// rings (Appendix A). Dequeues are wait-free per ring; enqueues are
// lock-free (a starving enqueuer closes the current ring and opens a
// fresh one). A handle registers once with the queue and follows ring
// hops automatically — every ring materializes the handle's record on
// first touch.
type Unbounded[T any] struct {
	q    *unbounded.Queue[T]
	pool handlePool[unbounded.Handle]
}

// UnboundedHandle is a registered per-goroutine token of an Unbounded
// queue — the zero-overhead explicit path. Must not be shared between
// concurrently running goroutines.
type UnboundedHandle[T any] struct {
	q *Unbounded[T]
	h *unbounded.Handle
}

// NewUnbounded creates an unbounded queue whose rings hold 2^order
// values each. Drained rings are recycled through a bounded
// hazard-pointer-protected pool (size via WithRingPool), so steady
// traffic within the pool's capacity allocates no rings.
func NewUnbounded[T any](order uint, opts ...Option) (*Unbounded[T], error) {
	c := buildConfig(opts)
	q, err := unbounded.New[T](order, c.ringPool, c.core)
	if err != nil {
		return nil, err
	}
	qq := &Unbounded[T]{q: q}
	qq.pool.init(q.Register, q.Unregister)
	return qq, nil
}

// MustUnbounded is NewUnbounded that panics on error.
func MustUnbounded[T any](order uint, opts ...Option) *Unbounded[T] {
	q, err := NewUnbounded[T](order, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Register claims an explicit per-goroutine handle.
func (q *Unbounded[T]) Register() (*UnboundedHandle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	return &UnboundedHandle[T]{q: q, h: h}, nil
}

// Unregister releases the handle, clearing its hazard slot so a
// parked handle stops pinning a ring.
func (h *UnboundedHandle[T]) Unregister() { h.q.q.Unregister(h.h) }

// Enqueue appends v. Fails (returns false) only when the queue is
// closed — capacity never runs out.
// wcq:noalloc
func (h *UnboundedHandle[T]) Enqueue(v T) bool { return h.q.q.Enqueue(h.h, v) }

// Dequeue removes the oldest value, or returns ok=false when empty.
// wcq:noalloc
func (h *UnboundedHandle[T]) Dequeue() (v T, ok bool) { return h.q.q.Dequeue(h.h) }

// EnqueueBatch appends values in order, amortizing ring reservations
// over the batch. Returns how many were inserted: len(vs) normally,
// fewer when the queue closes mid-batch (a short write — the counted
// prefix is in the queue and will be drained; the rest was not
// inserted).
// wcq:noalloc
func (h *UnboundedHandle[T]) EnqueueBatch(vs []T) int { return h.q.q.EnqueueBatch(h.h, vs) }

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order, returning how many were dequeued.
// wcq:noalloc
func (h *UnboundedHandle[T]) DequeueBatch(out []T) int { return h.q.q.DequeueBatch(h.h, out) }

// EnqueueWait appends v. The queue is never full, so this never
// blocks and never parks: no waiter is prepared, no Wait is entered —
// the only eventcount interaction is waking a parked consumer, which
// costs a single atomic load when no one is parked. It returns nil on
// success, ErrClosed, or ctx.Err() if ctx was already done on entry
// (in which case the value is not published).
func (h *UnboundedHandle[T]) EnqueueWait(ctx context.Context, v T) error {
	return h.q.q.EnqueueWait(ctx, h.h, v)
}

// DequeueWait removes the oldest value, blocking while the queue is
// empty. Returns the value, ErrClosed once the queue is closed and
// drained, or ctx.Err() if the context is done first.
func (h *UnboundedHandle[T]) DequeueWait(ctx context.Context) (T, error) {
	return h.q.q.DequeueWait(ctx, h.h)
}

// DequeueBlock is DequeueWait without a deadline.
func (h *UnboundedHandle[T]) DequeueBlock() (T, error) {
	return h.q.q.DequeueWait(context.Background(), h.h)
}

// Enqueue appends v through a pooled handle. Fails only when the
// queue is closed.
// wcq:noalloc
func (q *Unbounded[T]) Enqueue(v T) bool {
	h := q.pool.mustGet()
	// Deferred so a panic inside the operation returns the borrowed
	// handle instead of leaking it. Same on every pooled path below.
	defer q.pool.put(h)
	return q.q.Enqueue(h, v)
}

// Dequeue removes the oldest value through a pooled handle, or
// returns ok=false when the whole queue is empty.
// wcq:noalloc
func (q *Unbounded[T]) Dequeue() (v T, ok bool) {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return q.q.Dequeue(h)
}

// EnqueueBatch appends values in order through a pooled handle,
// returning how many were inserted (a short count when the queue
// closes mid-batch; see UnboundedHandle.EnqueueBatch).
// wcq:noalloc
func (q *Unbounded[T]) EnqueueBatch(vs []T) int {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return q.q.EnqueueBatch(h, vs)
}

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order through a pooled handle, returning how many were dequeued.
// wcq:noalloc
func (q *Unbounded[T]) DequeueBatch(out []T) int {
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return q.q.DequeueBatch(h, out)
}

// EnqueueWait appends v through a pooled handle; nil, ErrClosed, or
// ctx.Err() when ctx was already done on entry. Never parks (see
// UnboundedHandle.EnqueueWait). Reports handle-cap exhaustion as an
// error rather than panicking.
func (q *Unbounded[T]) EnqueueWait(ctx context.Context, v T) error {
	h, err := q.pool.get()
	if err != nil {
		return err
	}
	defer q.pool.put(h)
	return q.q.EnqueueWait(ctx, h, v)
}

// DequeueWait removes the oldest value through a pooled handle,
// blocking while the queue is empty; see UnboundedHandle.DequeueWait.
func (q *Unbounded[T]) DequeueWait(ctx context.Context) (T, error) {
	h, err := q.pool.get()
	if err != nil {
		var zero T
		return zero, err
	}
	defer q.pool.put(h)
	return q.q.DequeueWait(ctx, h)
}

// DequeueBlock is DequeueWait without a deadline.
func (q *Unbounded[T]) DequeueBlock() (T, error) { return q.DequeueWait(context.Background()) }

// Close closes the queue: subsequent enqueues fail and dequeuers drain
// the remaining values before observing ErrClosed. Blocks until
// in-flight enqueues retire. Idempotent.
func (q *Unbounded[T]) Close() { q.q.Close() }

// Closed reports whether Close has been called.
func (q *Unbounded[T]) Closed() bool { return q.q.Closed() }

// Footprint returns current queue-owned bytes: linked rings, their
// record arenas, plus the bounded standby inventory of recycled rings
// (the pool and rings awaiting hazard reclamation). It grows with
// content and the handle high-water mark, and stays flat under steady
// traffic.
func (q *Unbounded[T]) Footprint() int64 { return q.q.Footprint() }

// PeakFootprint returns the high-water mark of Footprint over the
// queue's lifetime — the number a capacity planner actually wants from
// an "unbounded" queue.
func (q *Unbounded[T]) PeakFootprint() int64 { return q.q.PeakFootprint() }

// PoolCap returns the ring-pool capacity (WithRingPool).
func (q *Unbounded[T]) PoolCap() int { return q.q.PoolCap() }

// LiveHandles returns the number of currently registered handles.
func (q *Unbounded[T]) LiveHandles() int { return q.q.LiveHandles() }

// HandleHighWater returns the largest number of handles ever live at
// once — the bound on every ring's record-arena growth.
func (q *Unbounded[T]) HandleHighWater() int { return q.q.HandleHighWater() }

// RingStats reports just the ring-recycling counters — three atomic
// loads, no ring-list traversal — for callers polling the
// allocation-free property at high frequency (Stats carries the same
// numbers plus the slow-path aggregation).
func (q *Unbounded[T]) RingStats() (hits, misses, drops uint64) { return q.q.RingStats() }

// MaxOps returns the per-ring safe-operation bound. Fresh rings start
// fresh budgets, so unlike Queue.MaxOps it is not a lifetime limit.
func (q *Unbounded[T]) MaxOps() uint64 { return q.q.MaxOps() }

// Stats reports slow-path counters aggregated over the currently
// linked rings (a lower bound: drained rings take their counters with
// them) plus the ring-recycling pool counters.
func (q *Unbounded[T]) Stats() Stats {
	s := q.q.Stats()
	ws := q.q.WaitStats()
	return Stats{
		SlowEnqueues: s.SlowEnqueues, SlowDequeues: s.SlowDequeues, Helps: s.Helps,
		PoolHits: s.PoolHits, PoolMisses: s.PoolMisses, PoolDrops: s.PoolDrops,
		DeqWaiters: ws.DeqWaiters, Waits: ws.Waits, Wakes: ws.Wakes,
	}
}
