// Package wcq is the public API of this repository: wCQ, the fast
// wait-free MPMC FIFO queue with bounded memory usage of Nikolaev &
// Ravindran (SPAA '22).
//
// Four queue shapes are exported:
//
//   - Queue[T]: the paper's contribution — a bounded wait-free MPMC
//     queue of 2^order values with statically bounded memory.
//   - Unbounded[T]: rings linked per Appendix A — wait-free dequeues,
//     lock-free enqueues, memory proportional to content. Drained
//     rings are recycled through a bounded hazard-pointer-protected
//     pool (WithRingPool), so steady-state ring hops allocate nothing
//     and Footprint stays flat (DESIGN.md §8).
//   - Striped[T]: a sharded front-end over W independent rings with
//     per-handle lane affinity and work-stealing dequeues. FIFO per
//     handle rather than globally, in exchange for throughput that
//     scales past a single ring's fetch-and-add (DESIGN.md §7).
//   - The scq sibling package: the lock-free SCQ, for callers that
//     prefer slightly higher throughput over wait-freedom.
//
// Every goroutine operating on a queue first claims a Handle with
// Register; handles carry the per-thread helping state the wait-free
// protocol requires and must not be shared between concurrently
// running goroutines.
//
// Basic usage:
//
//	q, _ := wcq.New[*Request](16, runtime.GOMAXPROCS(0))
//	h, _ := q.Register()
//	q.Enqueue(h, req)       // false when full
//	v, ok := q.Dequeue(h)   // false when empty
//
// All shapes also expose EnqueueBatch/DequeueBatch, which amortize
// the ring reservation — one fetch-and-add per ring for a batch of k
// operations instead of k — while preserving per-handle FIFO order
// and the scalar paths' progress guarantees (DESIGN.md §6):
//
//	buf := make([]*Request, 64)
//	n := q.DequeueBatch(h, buf)  // up to 64 values, one reservation
//	for _, req := range buf[:n] {
//		process(req)
//	}
package wcq

import (
	"wcqueue/internal/core"
	"wcqueue/internal/unbounded"
)

// config collects every construction knob; core ring options plus the
// shapes' own parameters.
type config struct {
	core     core.Options
	ringPool int
}

// Option configures queue construction.
type Option func(*config)

// WithPatience overrides the fast-path attempt budgets (MAX_PATIENCE,
// paper §6: 16 for enqueue, 64 for dequeue).
func WithPatience(enqueue, dequeue int) Option {
	return func(c *config) { c.core.EnqPatience, c.core.DeqPatience = enqueue, dequeue }
}

// WithHelpDelay overrides the number of operations between scans for
// peers needing help (HELP_DELAY).
func WithHelpDelay(d int) Option {
	return func(c *config) { c.core.HelpDelay = d }
}

// WithEmulatedFAA replaces hardware fetch-and-add and atomic OR with
// CAS loops, modeling LL/SC architectures (paper §4).
func WithEmulatedFAA() Option {
	return func(c *config) { c.core.EmulatedFAA = true }
}

// WithRingPool sets how many drained rings Unbounded retains for
// reuse (default: a small pool; see internal/unbounded's
// DefaultPoolSize). Size it to the rings churned between reclamation
// points — roughly content-swing/2^order per concurrent hopper — to
// keep steady-state ring hops allocation-free. Ignored by the bounded
// shapes, which never allocate after construction.
func WithRingPool(n int) Option {
	return func(c *config) { c.ringPool = n }
}

func buildConfig(opts []Option) config {
	var c config
	for _, f := range opts {
		f(&c)
	}
	return c
}

// Queue is a bounded wait-free MPMC FIFO queue of values of type T.
// Memory usage is fixed at construction (Theorem 5.8).
type Queue[T any] struct {
	q *core.Queue[T]
}

// Handle is a registered per-goroutine token.
type Handle = core.Handle

// New creates a queue holding up to 2^order values, operated by up to
// numThreads concurrently registered goroutines.
func New[T any](order uint, numThreads int, opts ...Option) (*Queue[T], error) {
	c := buildConfig(opts)
	q, err := core.NewQueue[T](order, numThreads, c.core)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{q: q}, nil
}

// Must is New that panics on error.
func Must[T any](order uint, numThreads int, opts ...Option) *Queue[T] {
	q, err := New[T](order, numThreads, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Register claims a per-goroutine handle.
func (q *Queue[T]) Register() (*Handle, error) { return q.q.Register() }

// Unregister releases a handle for reuse by another goroutine.
func (q *Queue[T]) Unregister(h *Handle) { q.q.Unregister(h) }

// Enqueue inserts v, returning false if the queue is full. Wait-free.
func (q *Queue[T]) Enqueue(h *Handle, v T) bool { return q.q.Enqueue(h, v) }

// Dequeue removes the oldest value, returning ok=false when the queue
// is empty. Wait-free.
func (q *Queue[T]) Dequeue(h *Handle) (v T, ok bool) { return q.q.Dequeue(h) }

// EnqueueBatch inserts up to len(vs) values in order and returns how
// many were inserted (fewer only when the queue fills). A batch of k
// reserves its ring positions with one fetch-and-add per ring instead
// of k, which is the dominant cost at high core counts (DESIGN.md §6).
// Wait-free.
func (q *Queue[T]) EnqueueBatch(h *Handle, vs []T) int { return q.q.EnqueueBatch(h, vs) }

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued. Wait-free.
func (q *Queue[T]) DequeueBatch(h *Handle, out []T) int { return q.q.DequeueBatch(h, out) }

// Cap returns the queue capacity (2^order).
func (q *Queue[T]) Cap() int { return q.q.Cap() }

// Footprint returns the queue's memory usage in bytes; constant for
// the queue's lifetime.
func (q *Queue[T]) Footprint() int64 { return q.q.Footprint() }

// MaxOps returns the number of operations the queue can safely execute
// before its packed cycle counters could wrap (a consequence of Go's
// missing 128-bit CAS; ≈5·10^11 at order 16 — see DESIGN.md §2).
func (q *Queue[T]) MaxOps() uint64 { return q.q.MaxOps() }

// Stats reports how often operations fell back to the wait-free slow
// path and how often threads helped peers.
func (q *Queue[T]) Stats() Stats {
	s := q.q.Stats()
	return Stats{SlowEnqueues: s.SlowEnqueues, SlowDequeues: s.SlowDequeues, Helps: s.Helps}
}

// Stats are cumulative slow-path counters, plus — for Unbounded — the
// ring-recycling pool counters (always zero for the bounded shapes,
// which never allocate or recycle rings).
type Stats struct {
	SlowEnqueues uint64
	SlowDequeues uint64
	Helps        uint64
	PoolHits     uint64 // ring hops served from the recycled pool
	PoolMisses   uint64 // ring hops that allocated a fresh ring
	PoolDrops    uint64 // retired rings dropped because the pool was full
}

// Unbounded is an unbounded MPMC FIFO queue built from linked wCQ
// rings (Appendix A). Dequeues are wait-free per ring; enqueues are
// lock-free (a starving enqueuer closes the current ring and opens a
// fresh one).
type Unbounded[T any] struct {
	q *unbounded.Queue[T]
}

// UnboundedHandle is a registered per-goroutine token for Unbounded.
type UnboundedHandle = unbounded.Handle

// NewUnbounded creates an unbounded queue whose rings hold 2^order
// values each. Drained rings are recycled through a bounded
// hazard-pointer-protected pool (size via WithRingPool), so steady
// traffic within the pool's capacity allocates no rings.
func NewUnbounded[T any](order uint, numThreads int, opts ...Option) (*Unbounded[T], error) {
	c := buildConfig(opts)
	q, err := unbounded.New[T](order, numThreads, c.ringPool, c.core)
	if err != nil {
		return nil, err
	}
	return &Unbounded[T]{q: q}, nil
}

// MustUnbounded is NewUnbounded that panics on error.
func MustUnbounded[T any](order uint, numThreads int, opts ...Option) *Unbounded[T] {
	q, err := NewUnbounded[T](order, numThreads, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Register claims a per-goroutine handle.
func (q *Unbounded[T]) Register() (*UnboundedHandle, error) { return q.q.Register() }

// Unregister releases a handle.
func (q *Unbounded[T]) Unregister(h *UnboundedHandle) { q.q.Unregister(h) }

// Enqueue appends v. Never fails.
func (q *Unbounded[T]) Enqueue(h *UnboundedHandle, v T) { q.q.Enqueue(h, v) }

// Dequeue removes the oldest value, or returns ok=false when empty.
func (q *Unbounded[T]) Dequeue(h *UnboundedHandle) (v T, ok bool) { return q.q.Dequeue(h) }

// EnqueueBatch appends all values in order, amortizing ring
// reservations over the batch. Never fails.
func (q *Unbounded[T]) EnqueueBatch(h *UnboundedHandle, vs []T) { q.q.EnqueueBatch(h, vs) }

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order, returning how many were dequeued.
func (q *Unbounded[T]) DequeueBatch(h *UnboundedHandle, out []T) int {
	return q.q.DequeueBatch(h, out)
}

// Footprint returns current queue-owned bytes: linked rings plus the
// bounded standby inventory of recycled rings (the pool and rings
// awaiting hazard reclamation). It grows with content and stays flat
// under steady traffic.
func (q *Unbounded[T]) Footprint() int64 { return q.q.Footprint() }

// PeakFootprint returns the high-water mark of Footprint over the
// queue's lifetime — the number a capacity planner actually wants from
// an "unbounded" queue.
func (q *Unbounded[T]) PeakFootprint() int64 { return q.q.PeakFootprint() }

// PoolCap returns the ring-pool capacity (WithRingPool).
func (q *Unbounded[T]) PoolCap() int { return q.q.PoolCap() }

// RingStats reports just the ring-recycling counters — three atomic
// loads, no ring-list traversal — for callers polling the
// allocation-free property at high frequency (Stats carries the same
// numbers plus the slow-path aggregation).
func (q *Unbounded[T]) RingStats() (hits, misses, drops uint64) { return q.q.RingStats() }

// MaxOps returns the per-ring safe-operation bound. Fresh rings start
// fresh budgets, so unlike Queue.MaxOps it is not a lifetime limit.
func (q *Unbounded[T]) MaxOps() uint64 { return q.q.MaxOps() }

// Stats reports slow-path counters aggregated over the currently
// linked rings (a lower bound: drained rings take their counters with
// them) plus the ring-recycling pool counters.
func (q *Unbounded[T]) Stats() Stats {
	s := q.q.Stats()
	return Stats{
		SlowEnqueues: s.SlowEnqueues, SlowDequeues: s.SlowDequeues, Helps: s.Helps,
		PoolHits: s.PoolHits, PoolMisses: s.PoolMisses, PoolDrops: s.PoolDrops,
	}
}
