// Package wcq is the public API of this repository: wCQ, the fast
// wait-free MPMC FIFO queue with bounded memory usage of Nikolaev &
// Ravindran (SPAA '22).
//
// Four queue shapes are exported:
//
//   - Queue[T]: the paper's contribution — a bounded wait-free MPMC
//     queue of 2^order values with statically bounded memory.
//   - Unbounded[T]: rings linked per Appendix A — wait-free dequeues,
//     lock-free enqueues, memory proportional to content. Drained
//     rings are recycled through a bounded hazard-pointer-protected
//     pool (WithRingPool), so steady-state ring hops allocate nothing
//     and Footprint stays flat (DESIGN.md §8).
//   - Striped[T]: the recommended default front-end — a sharded queue
//     over an elastic directory of independent lanes with per-handle
//     lane affinity and work-stealing dequeues. A contention-driven
//     governor grows and shrinks the lane count online within
//     WithLaneBounds, so it tracks the machine and the load without
//     tuning (DESIGN.md §7, §13). FIFO per handle rather than
//     globally, in exchange for throughput that scales past a single
//     ring's fetch-and-add; use Queue[T] when a single total order is
//     required.
//   - The scq sibling package: the lock-free SCQ, for callers that
//     prefer slightly higher throughput over wait-freedom.
//
// For payloads that fit in 52 bits (pointers, small integers, or a
// user Codec), the direct-value counterparts — Direct, DirectStriped
// and DirectUnbounded — store the value in the ring entry itself,
// halving the atomics per transfer at the cost of lock-freedom
// instead of wait-freedom and no blocking layer (DESIGN.md §11; see
// direct.go for the codec contract and the trade-off list).
//
// Registration is dynamic (DESIGN.md §9): constructors take no thread
// count, and goroutines may register and unregister freely — per-
// participant records live in a grow-only chunked arena bounded only
// by the 16-bit owner-id space (65535 concurrent handles, or the
// WithMaxHandles cap), with released slots recycled so churn keeps
// memory flat.
//
// Every shape offers two call styles:
//
//	q, _ := wcq.New[*Request](16)
//	q.Enqueue(req)             // handle-free: borrows a pooled handle
//	v, ok := q.Dequeue()
//
//	h, _ := q.Register()       // explicit: the zero-overhead fast path
//	defer h.Unregister()
//	h.Enqueue(req)
//	v, ok := h.Dequeue()
//
// The handle-free methods use a registered handle from a per-P cache
// per call (see pool.go), so the same P keeps the same handle — and
// on the striped shapes the same lane — across calls. On Queue[T]
// each P's handle is RESIDENT: the scalar ops pin the processor and
// use it in place, so a handle-free call costs a pin and one atomic
// load over the explicit path — within a few percent of an explicit
// Handle. The other shapes borrow with a single Swap on the caller's
// own cache line; goroutines on a hot path can still hold an
// explicit Handle. Handles carry the per-thread helping state the
// wait-free protocol requires and must not be shared between
// concurrently running goroutines.
//
// On the direct shapes, explicit handles additionally carry a cached
// head/tail window and amortized threshold maintenance (DESIGN.md
// §14), so steady-state scalar ops skip the shared-cacheline
// pre-checks entirely; Direct[T] further offers WithCoalescing, which
// merges bursts of scalar enqueues into one ring reservation,
// prefetches dequeues the same way, and eliminates same-handle
// produce-consume pairs on an empty queue without touching the ring.
// Coalescing trades peer visibility for throughput — a buffered value
// is published at the next window fill, dequeue, Flush or Unregister
// — so reach for it on streaming handles that own their traffic, not
// for request/response handoffs where another goroutine must observe
// each value immediately.
//
// All shapes also expose EnqueueBatch/DequeueBatch, which amortize
// the ring reservation — one fetch-and-add per ring for a batch of k
// operations instead of k — while preserving per-handle FIFO order
// and the scalar paths' progress guarantees (DESIGN.md §6):
//
//	buf := make([]*Request, 64)
//	n := h.DequeueBatch(buf)     // up to 64 values, one reservation
//	for _, req := range buf[:n] {
//		process(req)
//	}
//
// For consumers that would otherwise spin-poll, every shape has
// blocking variants with close/drain semantics (DESIGN.md §10):
//
//	v, err := h.DequeueWait(ctx) // parks at zero CPU until a value,
//	                             // ctx.Done(), or close-and-drained
//	err = h.EnqueueWait(ctx, v)  // parks while full
//	v, err = h.DequeueBlock()    // DequeueWait without a deadline
//	q.Close()                    // enqueues fail; accepted values are
//	                             // drained exactly once, then blocked
//	                             // dequeuers observe ErrClosed
//
// The blocking layer parks on an eventcount and leaves the
// non-blocking fast paths untouched while no waiter is parked; see
// examples/workerpool for the channel-replacement pattern.
//
// # Robustness guarantees
//
// The progress contracts are tested adversarially, not just
// statistically (DESIGN.md §12): a failpoint layer (built only under
// the wcq_failpoints tag; a compiled no-op otherwise) can freeze a
// thread inside any linearization-critical window, and the stall
// matrix verifies that peers keep completing operations while it is
// frozen, that the frozen operation is helped exactly once, that
// Close waits for — and exactly-once drains around — a stalled
// enqueuer, and that a stalled traverser's hazard pointer keeps its
// ring alive through arbitrary recycling churn. Panics raised by user
// code mid-operation (a Codec.Encode, an out-of-range direct value)
// propagate before any ring state is reserved and never leak a
// pooled handle: recover and keep using the queue.
//
// # Running a service on top
//
// A queue keeps overload honest but does not decide what to do about
// it; that is a service-layer concern (DESIGN.md §16). For production
// ingest paths, front the queue with internal/admission-style
// admission control rather than unbounded EnqueueWait: pick
// reject-on-full or a deadline-bounded wait, so producers shed excess
// load instead of accumulating parked goroutines, and every submit
// resolves to exactly one of accepted, shed, or closed. Stats exposes
// the signals such a layer needs — EnqWaiters/DeqWaiters gauges for
// a progress watchdog, Waits/Wakes for park-rate deltas, and the
// lane and pool counters for capacity tuning — and an already-expired
// context is rejected before any queue state changes, so "shed" can
// never mean "published anyway". cmd/wcqload runs the whole stack as
// a scrapeable service; see it for the wiring pattern, including the
// SIGTERM Close-then-drain shutdown that delivers every accepted
// value exactly once.
package wcq

import (
	"context"
	"unsafe"

	"wcqueue/internal/core"
)

// ErrClosed is returned by the blocking operations of a closed queue:
// by EnqueueWait as soon as Close is called, and by DequeueWait /
// DequeueBlock once the queue is closed and fully drained. Compare
// with errors.Is.
var ErrClosed = core.ErrClosed

// config collects every construction knob; core ring options plus the
// shapes' own parameters.
type config struct {
	core       core.Options
	ringPool   int
	laneMin    int
	laneMax    int
	fixedLanes bool
	coalesce   int
}

// Option configures queue construction.
type Option func(*config)

// WithPatience overrides the fast-path attempt budgets (MAX_PATIENCE,
// paper §6: 16 for enqueue, 64 for dequeue).
func WithPatience(enqueue, dequeue int) Option {
	return func(c *config) { c.core.EnqPatience, c.core.DeqPatience = enqueue, dequeue }
}

// WithHelpDelay overrides the number of operations between scans for
// peers needing help (HELP_DELAY).
func WithHelpDelay(d int) Option {
	return func(c *config) { c.core.HelpDelay = d }
}

// WithEmulatedFAA replaces hardware fetch-and-add and atomic OR with
// CAS loops, modeling LL/SC architectures (paper §4).
func WithEmulatedFAA() Option {
	return func(c *config) { c.core.EmulatedFAA = true }
}

// WithMaxHandles caps concurrently registered handles. The default is
// the full 16-bit owner-id space (65535); a lower cap shrinks the
// per-ring chunk directory and bounds worst-case arena growth.
// Registration never fails below the cap — the record arena grows on
// demand — and released handles are recycled, so only peak concurrency
// counts against it.
func WithMaxHandles(n int) Option {
	return func(c *config) { c.core.MaxHandles = n }
}

// WithRingPool sets how many drained rings Unbounded retains for
// reuse (default: a small pool; see internal/unbounded's
// DefaultPoolSize). Size it to the rings churned between reclamation
// points — roughly content-swing/2^order per concurrent hopper — to
// keep steady-state ring hops allocation-free. Ignored by the bounded
// shapes, which never allocate rings after construction.
func WithRingPool(n int) Option {
	return func(c *config) { c.ringPool = n }
}

// WithLaneBounds sets the striped shapes' elastic lane bounds
// [min, max] for the resize governor (DESIGN.md §13). Defaults: min 1,
// max the larger of the constructed stripe count and GOMAXPROCS.
// Ignored by the non-striped shapes.
func WithLaneBounds(min, max int) Option {
	return func(c *config) { c.laneMin, c.laneMax = min, max }
}

// WithFixedLanes disables the striped shapes' resize governor: the
// lane count stays at construction (manual Resize still works). The
// pre-elastic behavior, kept for benchmark baselines and workloads
// with known-stable parallelism.
func WithFixedLanes() Option {
	return func(c *config) { c.fixedLanes = true }
}

// WithCoalescing sets the op-coalescing window of the Direct queue's
// explicit handles (DESIGN.md §14): a handle buffers up to `window`
// back-to-back scalar enqueues and publishes them with ONE ring
// reservation, and its scalar dequeues prefetch up to `window` values
// per reservation. Per-handle FIFO is preserved — the buffers drain in
// insertion order and every cross-call boundary (a dequeue after
// enqueues, Flush, Unregister) publishes the pending window first.
//
// The trade-off is deferred visibility: a coalescing handle's Enqueue
// returning true means "accepted for the next flush", not "visible to
// other consumers yet", and prefetched values are invisible to peers
// until this handle returns them. Use it for handles that stream —
// pipeline stages, samplers, log shippers — not for request/response
// signaling; leave it off (the default) when each value must be
// observable the moment Enqueue returns. The window is clamped to the
// queue capacity. Ignored by every other shape and by the handle-free
// (pooled) call style, whose borrowed handles must never hold values
// across calls.
func WithCoalescing(window int) Option {
	return func(c *config) { c.coalesce = window }
}

func buildConfig(opts []Option) config {
	var c config
	for _, f := range opts {
		f(&c)
	}
	return c
}

// Queue is a bounded wait-free MPMC FIFO queue of values of type T.
// Memory usage is fixed at construction except for the per-handle
// record arena, which grows only with peak handle concurrency
// (Theorem 5.8, re-parameterized — see DESIGN.md §9).
type Queue[T any] struct {
	q    *core.Queue[T]
	pool handlePool[core.Handle]
}

// Handle is a registered per-goroutine token of a Queue — the
// zero-overhead explicit path. A Handle must not be shared between
// concurrently running goroutines; release it with Unregister.
type Handle[T any] struct {
	q *Queue[T]
	h *core.Handle
}

// New creates a queue holding up to 2^order values. Goroutines
// register dynamically — up to 65535 concurrently, or the
// WithMaxHandles cap.
func New[T any](order uint, opts ...Option) (*Queue[T], error) {
	c := buildConfig(opts)
	q, err := core.NewQueue[T](order, c.core)
	if err != nil {
		return nil, err
	}
	qq := &Queue[T]{q: q}
	qq.pool.init(q.Register, q.Unregister)
	// The core ring operations are bounded, never yield and cannot
	// panic on a valid queue, so the implicit path may run them under
	// the processor pin with a resident handle (pool.go) — the
	// zero-RMW borrow that closes the implicit-vs-explicit gap
	// (DESIGN.md §13). The striped shapes must not enable this: their
	// operations can run lane maintenance, which yields.
	qq.pool.resident = true
	return qq, nil
}

// Must is New that panics on error.
func Must[T any](order uint, opts ...Option) *Queue[T] {
	q, err := New[T](order, opts...)
	if err != nil {
		panic(err)
	}
	return q
}

// Register claims an explicit per-goroutine handle.
func (q *Queue[T]) Register() (*Handle[T], error) {
	h, err := q.q.Register()
	if err != nil {
		return nil, err
	}
	return &Handle[T]{q: q, h: h}, nil
}

// Unregister releases the handle's slot for reuse by another
// goroutine. No operation may be in flight on the handle.
func (h *Handle[T]) Unregister() { h.q.q.Unregister(h.h) }

// Enqueue inserts v, returning false if the queue is full. Wait-free.
// wcq:noalloc
func (h *Handle[T]) Enqueue(v T) bool { return h.q.q.Enqueue(h.h, v) }

// Dequeue removes the oldest value, returning ok=false when the queue
// is empty. Wait-free.
// wcq:noalloc
func (h *Handle[T]) Dequeue() (v T, ok bool) { return h.q.q.Dequeue(h.h) }

// EnqueueBatch inserts up to len(vs) values in order and returns how
// many were inserted (fewer only when the queue fills). A batch of k
// reserves its ring positions with one fetch-and-add per ring instead
// of k, which is the dominant cost at high core counts (DESIGN.md §6).
// Wait-free.
// wcq:noalloc
func (h *Handle[T]) EnqueueBatch(vs []T) int { return h.q.q.EnqueueBatch(h.h, vs) }

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order and returns how many were dequeued. Wait-free.
// wcq:noalloc
func (h *Handle[T]) DequeueBatch(out []T) int { return h.q.q.DequeueBatch(h.h, out) }

// EnqueueWait inserts v, blocking while the queue is full. Returns nil
// on success, ErrClosed if the queue is (or becomes) closed before the
// value is inserted, or ctx.Err() if the context is done first.
func (h *Handle[T]) EnqueueWait(ctx context.Context, v T) error {
	return h.q.q.EnqueueWait(ctx, h.h, v)
}

// DequeueWait removes the oldest value, blocking while the queue is
// empty. Returns the value, ErrClosed once the queue is closed and
// drained, or ctx.Err() if the context is done first. Values accepted
// before Close are always delivered before ErrClosed.
func (h *Handle[T]) DequeueWait(ctx context.Context) (T, error) {
	return h.q.q.DequeueWait(ctx, h.h)
}

// DequeueBlock is DequeueWait without a deadline: it blocks until a
// value arrives or the queue is closed and drained (ErrClosed).
func (h *Handle[T]) DequeueBlock() (T, error) {
	return h.q.q.DequeueWait(context.Background(), h.h)
}

// Enqueue inserts v through a pooled handle, returning false if the
// queue is full or closed. Prefer an explicit Handle on hot paths.
// Panics with an error wrapping ErrHandlesExhausted if the handle cap
// is pinned by explicit handles (see mustGet).
// wcq:noalloc
func (q *Queue[T]) Enqueue(v T) bool {
	// Resident fast path, open-coded (pinnedGet is a call too far at
	// this op cost): the core op runs under the processor pin on this
	// P's resident handle — no locked RMW, no defer. Safe without a
	// deferred unpin because the indirect core ops cannot panic (no
	// user codec runs here; full/empty report false). See pool.go for
	// the exclusivity argument. Same on every scalar/batch path below.
	if canPin && q.pool.resident {
		if pid := pinProc(); pid <= q.pool.mask {
			sh := &q.pool.shards[pid]
			if h := sh.res.Load(); h != nil {
				poolRaceAcquire(unsafe.Pointer(sh))
				ok := q.q.Enqueue(h, v)
				poolRaceRelease(unsafe.Pointer(sh))
				unpinProc()
				return ok
			}
		}
		unpinProc()
	}
	h := q.pool.mustGet()
	// Deferred so a panic inside the operation (a user codec, an
	// out-of-range direct value) returns the borrowed handle instead
	// of leaking it from the pool. Same on every borrowed path below.
	defer q.pool.put(h)
	return q.q.Enqueue(h, v)
}

// Dequeue removes the oldest value through a pooled handle, returning
// ok=false when the queue is empty. Panics with an error wrapping
// ErrHandlesExhausted if the handle cap is pinned by explicit handles.
// wcq:noalloc
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	if canPin && q.pool.resident {
		if pid := pinProc(); pid <= q.pool.mask {
			sh := &q.pool.shards[pid]
			if h := sh.res.Load(); h != nil {
				poolRaceAcquire(unsafe.Pointer(sh))
				v, ok = q.q.Dequeue(h)
				poolRaceRelease(unsafe.Pointer(sh))
				unpinProc()
				return v, ok
			}
		}
		unpinProc()
	}
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return q.q.Dequeue(h)
}

// EnqueueBatch inserts up to len(vs) values in order through a pooled
// handle, returning how many were inserted.
// wcq:noalloc
func (q *Queue[T]) EnqueueBatch(vs []T) int {
	if h, sh := q.pool.pinnedGet(); sh != nil {
		n := q.q.EnqueueBatch(h, vs)
		q.pool.pinnedRelease(sh)
		return n
	}
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return q.q.EnqueueBatch(h, vs)
}

// The batch paths keep the pinnedGet/pinnedRelease helpers: a batch
// amortizes the extra two calls over k operations, so open-coding
// would buy nothing.

// DequeueBatch removes up to len(out) of the oldest values in FIFO
// order through a pooled handle, returning how many were dequeued.
// wcq:noalloc
func (q *Queue[T]) DequeueBatch(out []T) int {
	if h, sh := q.pool.pinnedGet(); sh != nil {
		n := q.q.DequeueBatch(h, out)
		q.pool.pinnedRelease(sh)
		return n
	}
	h := q.pool.mustGet()
	defer q.pool.put(h)
	return q.q.DequeueBatch(h, out)
}

// EnqueueWait inserts v through a pooled handle, blocking while the
// queue is full. Unlike the bool methods it reports cap exhaustion as
// an error (wrapping ErrHandlesExhausted) rather than panicking.
func (q *Queue[T]) EnqueueWait(ctx context.Context, v T) error {
	h, err := q.pool.get()
	if err != nil {
		return err
	}
	defer q.pool.put(h)
	return q.q.EnqueueWait(ctx, h, v)
}

// DequeueWait removes the oldest value through a pooled handle,
// blocking while the queue is empty; see Handle.DequeueWait. The
// borrowed handle is held for the duration of the wait.
func (q *Queue[T]) DequeueWait(ctx context.Context) (T, error) {
	h, err := q.pool.get()
	if err != nil {
		var zero T
		return zero, err
	}
	defer q.pool.put(h)
	return q.q.DequeueWait(ctx, h)
}

// DequeueBlock is DequeueWait without a deadline.
func (q *Queue[T]) DequeueBlock() (T, error) { return q.DequeueWait(context.Background()) }

// Close closes the queue: subsequent enqueues fail, blocked enqueuers
// return ErrClosed, and dequeuers — blocked or not — drain every value
// accepted before Close and then observe ErrClosed. Close blocks until
// in-flight enqueues retire, so an enqueue that reported success
// always has its value delivered. Idempotent.
func (q *Queue[T]) Close() { q.q.Close() }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.q.Closed() }

// Cap returns the queue capacity (2^order).
func (q *Queue[T]) Cap() int { return q.q.Cap() }

// Footprint returns the queue's memory usage in bytes. It moves only
// when the registration high-water mark grows a record chunk — never
// per operation.
func (q *Queue[T]) Footprint() int64 { return q.q.Footprint() }

// MaxOps returns the number of operations the queue can safely execute
// before its packed cycle counters could wrap (a consequence of Go's
// missing 128-bit CAS; ≈5·10^11 at order 16 — see DESIGN.md §2).
func (q *Queue[T]) MaxOps() uint64 { return q.q.MaxOps() }

// LiveHandles returns the number of currently registered handles
// (explicit and pooled).
func (q *Queue[T]) LiveHandles() int { return q.q.LiveHandles() }

// HandleHighWater returns the largest number of handles ever live at
// once — the figure that bounds record-arena growth. Slot recycling
// keeps it flat under register/unregister churn.
func (q *Queue[T]) HandleHighWater() int { return q.q.HandleHighWater() }

// Stats reports how often operations fell back to the wait-free slow
// path and how often threads helped peers.
func (q *Queue[T]) Stats() Stats {
	s := q.q.Stats()
	ws := q.q.WaitStats()
	return Stats{
		SlowEnqueues: s.SlowEnqueues, SlowDequeues: s.SlowDequeues, Helps: s.Helps,
		EnqWaiters: ws.EnqWaiters, DeqWaiters: ws.DeqWaiters, Waits: ws.Waits, Wakes: ws.Wakes,
	}
}

// Stats are cumulative slow-path counters, plus — for Unbounded — the
// ring-recycling pool counters (always zero for the bounded shapes,
// which never allocate or recycle rings), plus — for the striped
// shapes — the elastic lane directory's telemetry (ROADMAP item 3:
// Resize was exported but unobserved).
type Stats struct {
	SlowEnqueues uint64
	SlowDequeues uint64
	Helps        uint64
	PoolHits     uint64 // ring hops served from the recycled pool
	PoolMisses   uint64 // ring hops that allocated a fresh ring
	PoolDrops    uint64 // retired rings dropped because the pool was full

	// Elastic lane telemetry (striped shapes only; zero elsewhere).
	// Grows/Shrinks/Steals are cumulative over the queue's lifetime —
	// they count governor decisions and manual Resize calls actually
	// applied, and dequeues served by a foreign lane — so deltas
	// between snapshots are meaningful even though the per-lane
	// slow-path counters above leave with retired lanes.
	Lanes       int    // current active lane count
	LaneGrows   uint64 // lane-count increases applied (governor or Resize)
	LaneShrinks uint64 // lane-count decreases applied (governor or Resize)
	Steals      uint64 // dequeues served by a foreign lane

	// Blocking-layer telemetry (DESIGN.md §10, §16): instantaneous
	// parked-caller gauges per side plus cumulative park/wake counters
	// from the shape's eventcounts. The gauges are what the admission
	// watchdog and cmd/wcqload export sample; the counters make deltas
	// between snapshots meaningful. EnqWaiters is definitionally zero
	// for the unbounded shapes (enqueuers never park there — see
	// Unbounded.EnqueueWait).
	EnqWaiters int    // enqueuers currently parked (queue full)
	DeqWaiters int    // dequeuers currently parked (queue empty)
	Waits      uint64 // cumulative parks, both sides
	Wakes      uint64 // cumulative wakeups delivered, both sides
}
