package wcq_test

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"wcqueue/wcq"
)

func TestQueueBasics(t *testing.T) {
	q := wcq.Must[string](4)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	if q.Cap() != 16 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	if !h.Enqueue("a") || !h.Enqueue("b") {
		t.Fatal("enqueue failed")
	}
	if v, ok := h.Dequeue(); !ok || v != "a" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if v, ok := h.Dequeue(); !ok || v != "b" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("empty queue yielded a value")
	}
}

// TestQueueHandleFree drives the queue entirely through the implicit
// (pooled-handle) methods.
func TestQueueHandleFree(t *testing.T) {
	q := wcq.Must[string](4)
	if !q.Enqueue("a") || !q.Enqueue("b") {
		t.Fatal("handle-free enqueue failed")
	}
	if v, ok := q.Dequeue(); !ok || v != "a" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if v, ok := q.Dequeue(); !ok || v != "b" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("empty queue yielded a value")
	}
	if live := q.LiveHandles(); live < 1 {
		t.Fatalf("pooled handle not registered: live=%d", live)
	}
}

// TestQueueImplicitExplicitInterleave mixes both call styles on one
// queue: a single FIFO must hold regardless of which style produced
// each value.
func TestQueueImplicitExplicitInterleave(t *testing.T) {
	q := wcq.Must[int](6)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			h.Enqueue(i)
		} else {
			q.Enqueue(i)
		}
	}
	for i := 0; i < 40; i++ {
		var v int
		var ok bool
		if i%3 == 0 {
			v, ok = q.Dequeue()
		} else {
			v, ok = h.Dequeue()
		}
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestQueueFullSemantics(t *testing.T) {
	q := wcq.Must[int](2) // capacity 4
	h, _ := q.Register()
	defer h.Unregister()
	for i := 0; i < 4; i++ {
		if !h.Enqueue(i) {
			t.Fatalf("enqueue %d below capacity failed", i)
		}
	}
	if h.Enqueue(99) {
		t.Fatal("enqueue at capacity succeeded")
	}
}

func TestOptionsApply(t *testing.T) {
	q, err := wcq.New[int](4,
		wcq.WithPatience(2, 2),
		wcq.WithHelpDelay(8),
		wcq.WithEmulatedFAA(),
	)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := q.Register()
	defer h.Unregister()
	for i := 0; i < 100; i++ {
		h.Enqueue(i)
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("iter %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestWithMaxHandlesCaps(t *testing.T) {
	q := wcq.Must[int](4, wcq.WithMaxHandles(1))
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Register(); err == nil {
		t.Fatal("over-registration accepted")
	}
	h.Unregister()
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrationChurnFlat registers and releases thousands of
// handles (explicit path): the high-water mark and footprint must
// track peak concurrency, not the cumulative count.
func TestRegistrationChurnFlat(t *testing.T) {
	q := wcq.Must[int](6)
	h0, _ := q.Register() // hold one slot across the churn
	defer h0.Unregister()
	for i := 0; i < 5000; i++ {
		h, err := q.Register()
		if err != nil {
			t.Fatalf("churn registration %d failed: %v", i, err)
		}
		h.Enqueue(i)
		h.Dequeue()
		h.Unregister()
	}
	if hw := q.HandleHighWater(); hw > 2 {
		t.Fatalf("churn grew high-water to %d, want <= 2", hw)
	}
	if live := q.LiveHandles(); live != 1 {
		t.Fatalf("live = %d after churn, want 1", live)
	}
}

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := wcq.New[int](0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := wcq.New[int](30); err == nil {
		t.Fatal("order 30 accepted")
	}
	if _, err := wcq.New[int](4, wcq.WithMaxHandles(1<<20)); err == nil {
		t.Fatal("MaxHandles beyond the owner-id space accepted")
	}
}

func TestMaxOpsAndFootprintExposed(t *testing.T) {
	q := wcq.Must[int](16)
	if q.MaxOps() < 1<<38 {
		t.Fatalf("MaxOps = %d", q.MaxOps())
	}
	if q.Footprint() <= 0 {
		t.Fatal("footprint not reported")
	}
}

func TestConcurrentUse(t *testing.T) {
	n := runtime.GOMAXPROCS(0) + 2
	q := wcq.Must[int](10)
	var wg sync.WaitGroup
	per := 5000
	if testing.Short() {
		per = 500
	}
	var sum, want int64
	for i := 0; i < per; i++ {
		want += int64(i)
	}
	want *= int64(n)
	var mu sync.Mutex
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := q.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Unregister()
			local := int64(0)
			for i := 0; i < per; i++ {
				for !h.Enqueue(i) {
					runtime.Gosched()
				}
				for {
					if v, ok := h.Dequeue(); ok {
						local += int64(v)
						break
					}
					runtime.Gosched()
				}
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if sum != want {
		t.Fatalf("value sum %d, want %d", sum, want)
	}
}

// TestConcurrentHandleFree is TestConcurrentUse through the implicit
// API: goroutines never touch Register, the pooled handles carry the
// per-thread state. GC is disabled for the duration: a collection
// evicts sync.Pool contents and the evicted handles only return their
// slots when finalizers run, which would make the high-water
// assertion timing-dependent.
func TestConcurrentHandleFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	n := runtime.GOMAXPROCS(0) + 2
	q := wcq.Must[int](10)
	var wg sync.WaitGroup
	per := 3000
	if testing.Short() {
		per = 300
	}
	var sum, want int64
	for i := 0; i < per; i++ {
		want += int64(i)
	}
	want *= int64(n)
	var mu sync.Mutex
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < per; i++ {
				for !q.Enqueue(i) {
					runtime.Gosched()
				}
				for {
					if v, ok := q.Dequeue(); ok {
						local += int64(v)
						break
					}
					runtime.Gosched()
				}
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if sum != want {
		t.Fatalf("value sum %d, want %d", sum, want)
	}
	// Pool reuse keeps the high-water mark near peak concurrency —
	// except in race builds, where sync.Pool drops Puts on purpose and
	// dropped handles wait on finalizers.
	if hw := q.HandleHighWater(); !raceEnabled && hw > 2*n {
		t.Fatalf("implicit pool grew high-water to %d for %d goroutines", hw, n)
	}
}

func TestUnbounded(t *testing.T) {
	q := wcq.MustUnbounded[int](4) // 16-slot rings force hopping
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	const n = 5000
	for i := 0; i < n; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("drained unbounded queue yielded a value")
	}
}

// TestUnboundedHandleFree drives ring hops through the implicit API.
func TestUnboundedHandleFree(t *testing.T) {
	q := wcq.MustUnbounded[int](3)
	const n = 2000
	for i := 0; i < n; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained queue yielded a value")
	}
}

func TestUnboundedFootprintElastic(t *testing.T) {
	q := wcq.MustUnbounded[int](4)
	h, _ := q.Register()
	defer h.Unregister()
	h.Enqueue(0) // publish the handle's records before the baseline
	h.Dequeue()
	base := q.Footprint()
	for i := 0; i < 1000; i++ {
		h.Enqueue(i)
	}
	grown := q.Footprint()
	if grown <= base {
		t.Fatal("footprint did not grow")
	}
	for i := 0; i < 1000; i++ {
		h.Dequeue()
	}
	if q.Footprint() >= grown {
		t.Fatal("footprint did not shrink")
	}
}

func TestStatsVisible(t *testing.T) {
	q := wcq.Must[int](3, wcq.WithPatience(1, 1), wcq.WithHelpDelay(1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := q.Register()
			defer h.Unregister()
			for i := 0; i < 2000; i++ {
				for !h.Enqueue(i) {
					h.Dequeue()
				}
				h.Dequeue()
			}
		}()
	}
	wg.Wait()
	s := q.Stats()
	t.Logf("stats under patience=1: %+v", s)
}

func TestQueueAccessors(t *testing.T) {
	q := wcq.Must[int](10)
	h, _ := q.Register()
	defer h.Unregister()
	// Footprint moves only with the handle high-water mark; after the
	// handle's records are published it is constant under load.
	base := q.Footprint()
	if base <= 0 {
		t.Fatalf("Footprint() = %d", base)
	}
	for i := 0; i < 500; i++ {
		h.Enqueue(i)
	}
	if q.Footprint() != base {
		t.Fatalf("footprint moved under load: %d -> %d", base, q.Footprint())
	}
	if q.MaxOps() == 0 {
		t.Fatal("MaxOps() = 0")
	}
	// Higher order must not shrink the wrap bound.
	if big := wcq.Must[int](16); big.MaxOps() < q.MaxOps() {
		t.Fatalf("MaxOps shrank with order: %d < %d", big.MaxOps(), q.MaxOps())
	}
	s := q.Stats()
	if s.SlowEnqueues != 0 || s.SlowDequeues != 0 || s.Helps != 0 {
		t.Fatalf("uncontended queue reports slow-path stats: %+v", s)
	}
}

// TestUnboundedRingPool covers the public recycling surface: the
// WithRingPool option, the pool counters in Stats, and the peak
// footprint staying flat once the pool is warm.
func TestUnboundedRingPool(t *testing.T) {
	q := wcq.MustUnbounded[int](3, wcq.WithRingPool(12)) // 8-slot rings
	if got := q.PoolCap(); got != 12 {
		t.Fatalf("PoolCap() = %d, want 12", got)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Unregister()
	churn := func(n int) {
		for i := 0; i < n; i++ {
			h.Enqueue(i)
		}
		for i := 0; i < n; i++ {
			if v, ok := h.Dequeue(); !ok || v != i {
				t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
			}
		}
	}
	for i := 0; i < 30; i++ { // warm-up: fill the pool
		churn(64)
	}
	warm := q.Stats()
	if warm.PoolHits == 0 {
		t.Fatal("churn across 8-slot rings never hit the pool")
	}
	peak := q.PeakFootprint()
	if peak < q.Footprint() {
		t.Fatalf("peak %d below live footprint %d", peak, q.Footprint())
	}
	for i := 0; i < 200; i++ {
		churn(64)
	}
	s := q.Stats()
	if s.PoolMisses != warm.PoolMisses {
		t.Fatalf("steady state allocated %d rings; want 0", s.PoolMisses-warm.PoolMisses)
	}
	if q.PeakFootprint() != peak {
		t.Fatalf("peak footprint moved in steady state: %d -> %d", peak, q.PeakFootprint())
	}
	if s.PoolHits <= warm.PoolHits {
		t.Fatal("steady state stopped recycling")
	}
}

func TestUnboundedAccessors(t *testing.T) {
	q := wcq.MustUnbounded[int](4)
	if q.MaxOps() == 0 {
		t.Fatal("MaxOps() = 0")
	}
	if got, want := q.MaxOps(), wcq.Must[int](4).MaxOps(); got != want {
		t.Fatalf("unbounded MaxOps %d, want per-ring bound %d", got, want)
	}
	s := q.Stats()
	if s.SlowEnqueues != 0 || s.SlowDequeues != 0 || s.Helps != 0 {
		t.Fatalf("fresh queue reports slow-path stats: %+v", s)
	}
	// Stats stay readable while the queue spans several rings.
	h, _ := q.Register()
	defer h.Unregister()
	for i := 0; i < 100; i++ {
		h.Enqueue(i)
	}
	_ = q.Stats() // must not race or panic mid-structure
	for i := 0; i < 100; i++ {
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("dequeue %d: (%d,%v)", i, v, ok)
		}
	}
}

// TestUnboundedRegistrationChurn stresses handle churn across ring
// hops: the queue-level high-water mark must stay flat, which also
// bounds every ring's record arena.
func TestUnboundedRegistrationChurn(t *testing.T) {
	q := wcq.MustUnbounded[int](3)
	for i := 0; i < 500; i++ {
		h, err := q.Register()
		if err != nil {
			t.Fatalf("churn registration %d failed: %v", i, err)
		}
		for j := 0; j < 20; j++ { // a few ring hops per handle
			h.Enqueue(j)
		}
		for j := 0; j < 20; j++ {
			if v, ok := h.Dequeue(); !ok || v != j {
				t.Fatalf("round %d: got (%d,%v) want %d", i, v, ok, j)
			}
		}
		h.Unregister()
	}
	if hw := q.HandleHighWater(); hw != 1 {
		t.Fatalf("churn grew high-water to %d", hw)
	}
}

func TestQueueBatchRoundTrip(t *testing.T) {
	q := wcq.Must[string](6)
	h, _ := q.Register()
	defer h.Unregister()
	in := []string{"a", "b", "c", "d", "e"}
	if n := h.EnqueueBatch(in); n != 5 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]string, 5)
	if n := h.DequeueBatch(out); n != 5 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], in[i])
		}
	}
	// The handle-free batch variants preserve intra-batch order too.
	if n := q.EnqueueBatch(in); n != 5 {
		t.Fatalf("handle-free EnqueueBatch = %d", n)
	}
	if n := q.DequeueBatch(out); n != 5 {
		t.Fatalf("handle-free DequeueBatch = %d", n)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("handle-free out[%d] = %q, want %q", i, out[i], in[i])
		}
	}
}

func TestUnboundedBatchAcrossRings(t *testing.T) {
	q := wcq.MustUnbounded[int](3) // 8-slot rings: batches span rings
	h, _ := q.Register()
	defer h.Unregister()
	const n = 1000
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	h.EnqueueBatch(in) // must hop rings many times
	out := make([]int, 64)
	next := 0
	for next < n {
		m := h.DequeueBatch(out)
		if m == 0 {
			t.Fatalf("empty with %d remaining", n-next)
		}
		for _, v := range out[:m] {
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
	if m := h.DequeueBatch(out); m != 0 {
		t.Fatalf("drained queue batch-yielded %d", m)
	}
}
