package wcq_test

import (
	"runtime"
	"sync"
	"testing"

	"wcqueue/wcq"
)

func TestQueueBasics(t *testing.T) {
	q := wcq.Must[string](4, 2)
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	if q.Cap() != 16 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	if !q.Enqueue(h, "a") || !q.Enqueue(h, "b") {
		t.Fatal("enqueue failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != "a" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if v, ok := q.Dequeue(h); !ok || v != "b" {
		t.Fatalf("got (%q,%v)", v, ok)
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty queue yielded a value")
	}
}

func TestQueueFullSemantics(t *testing.T) {
	q := wcq.Must[int](2, 1) // capacity 4
	h, _ := q.Register()
	for i := 0; i < 4; i++ {
		if !q.Enqueue(h, i) {
			t.Fatalf("enqueue %d below capacity failed", i)
		}
	}
	if q.Enqueue(h, 99) {
		t.Fatal("enqueue at capacity succeeded")
	}
}

func TestOptionsApply(t *testing.T) {
	q, err := wcq.New[int](4, 2,
		wcq.WithPatience(2, 2),
		wcq.WithHelpDelay(8),
		wcq.WithEmulatedFAA(),
	)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := q.Register()
	for i := 0; i < 100; i++ {
		q.Enqueue(h, i)
		if v, ok := q.Dequeue(h); !ok || v != i {
			t.Fatalf("iter %d: got (%d,%v)", i, v, ok)
		}
	}
}

func TestRegisterLimit(t *testing.T) {
	q := wcq.Must[int](4, 1)
	h, _ := q.Register()
	if _, err := q.Register(); err == nil {
		t.Fatal("over-registration accepted")
	}
	q.Unregister(h)
	if _, err := q.Register(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadOrder(t *testing.T) {
	if _, err := wcq.New[int](0, 1); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, err := wcq.New[int](30, 1); err == nil {
		t.Fatal("order 30 accepted")
	}
}

func TestMaxOpsAndFootprintExposed(t *testing.T) {
	q := wcq.Must[int](16, 4)
	if q.MaxOps() < 1<<38 {
		t.Fatalf("MaxOps = %d", q.MaxOps())
	}
	if q.Footprint() <= 0 {
		t.Fatal("footprint not reported")
	}
}

func TestConcurrentUse(t *testing.T) {
	n := runtime.GOMAXPROCS(0) + 2
	q := wcq.Must[int](10, 2*n)
	var wg sync.WaitGroup
	per := 5000
	if testing.Short() {
		per = 500
	}
	var sum, want int64
	for i := 0; i < per; i++ {
		want += int64(i)
	}
	want *= int64(n)
	var mu sync.Mutex
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := q.Register()
			if err != nil {
				t.Error(err)
				return
			}
			defer q.Unregister(h)
			local := int64(0)
			for i := 0; i < per; i++ {
				for !q.Enqueue(h, i) {
					runtime.Gosched()
				}
				for {
					if v, ok := q.Dequeue(h); ok {
						local += int64(v)
						break
					}
					runtime.Gosched()
				}
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if sum != want {
		t.Fatalf("value sum %d, want %d", sum, want)
	}
}

func TestUnbounded(t *testing.T) {
	q := wcq.MustUnbounded[int](4, 2) // 16-slot rings force hopping
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	const n = 5000
	for i := 0; i < n; i++ {
		q.Enqueue(h, i)
	}
	for i := 0; i < n; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("drained unbounded queue yielded a value")
	}
}

func TestUnboundedFootprintElastic(t *testing.T) {
	q := wcq.MustUnbounded[int](4, 2)
	h, _ := q.Register()
	base := q.Footprint()
	for i := 0; i < 1000; i++ {
		q.Enqueue(h, i)
	}
	grown := q.Footprint()
	if grown <= base {
		t.Fatal("footprint did not grow")
	}
	for i := 0; i < 1000; i++ {
		q.Dequeue(h)
	}
	if q.Footprint() >= grown {
		t.Fatal("footprint did not shrink")
	}
}

func TestStatsVisible(t *testing.T) {
	q := wcq.Must[int](3, 4, wcq.WithPatience(1, 1), wcq.WithHelpDelay(1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := q.Register()
			defer q.Unregister(h)
			for i := 0; i < 2000; i++ {
				for !q.Enqueue(h, i) {
					q.Dequeue(h)
				}
				q.Dequeue(h)
			}
		}()
	}
	wg.Wait()
	s := q.Stats()
	t.Logf("stats under patience=1: %+v", s)
}

func TestQueueAccessors(t *testing.T) {
	q := wcq.Must[int](10, 4)
	// Footprint is constant for the queue's lifetime (Theorem 5.8).
	base := q.Footprint()
	if base <= 0 {
		t.Fatalf("Footprint() = %d", base)
	}
	h, _ := q.Register()
	defer q.Unregister(h)
	for i := 0; i < 500; i++ {
		q.Enqueue(h, i)
	}
	if q.Footprint() != base {
		t.Fatalf("footprint moved under load: %d -> %d", base, q.Footprint())
	}
	if q.MaxOps() == 0 {
		t.Fatal("MaxOps() = 0")
	}
	// Higher order must not shrink the wrap bound.
	if big := wcq.Must[int](16, 4); big.MaxOps() < q.MaxOps() {
		t.Fatalf("MaxOps shrank with order: %d < %d", big.MaxOps(), q.MaxOps())
	}
	s := q.Stats()
	if s.SlowEnqueues != 0 || s.SlowDequeues != 0 || s.Helps != 0 {
		t.Fatalf("uncontended queue reports slow-path stats: %+v", s)
	}
}

// TestUnboundedRingPool covers the public recycling surface: the
// WithRingPool option, the pool counters in Stats, and the peak
// footprint staying flat once the pool is warm.
func TestUnboundedRingPool(t *testing.T) {
	q := wcq.MustUnbounded[int](3, 2, wcq.WithRingPool(12)) // 8-slot rings
	if got := q.PoolCap(); got != 12 {
		t.Fatalf("PoolCap() = %d, want 12", got)
	}
	h, err := q.Register()
	if err != nil {
		t.Fatal(err)
	}
	defer q.Unregister(h)
	churn := func(n int) {
		for i := 0; i < n; i++ {
			q.Enqueue(h, i)
		}
		for i := 0; i < n; i++ {
			if v, ok := q.Dequeue(h); !ok || v != i {
				t.Fatalf("dequeue %d: got (%d,%v)", i, v, ok)
			}
		}
	}
	for i := 0; i < 30; i++ { // warm-up: fill the pool
		churn(64)
	}
	warm := q.Stats()
	if warm.PoolHits == 0 {
		t.Fatal("churn across 8-slot rings never hit the pool")
	}
	peak := q.PeakFootprint()
	if peak < q.Footprint() {
		t.Fatalf("peak %d below live footprint %d", peak, q.Footprint())
	}
	for i := 0; i < 200; i++ {
		churn(64)
	}
	s := q.Stats()
	if s.PoolMisses != warm.PoolMisses {
		t.Fatalf("steady state allocated %d rings; want 0", s.PoolMisses-warm.PoolMisses)
	}
	if q.PeakFootprint() != peak {
		t.Fatalf("peak footprint moved in steady state: %d -> %d", peak, q.PeakFootprint())
	}
	if s.PoolHits <= warm.PoolHits {
		t.Fatal("steady state stopped recycling")
	}
}

func TestUnboundedAccessors(t *testing.T) {
	q := wcq.MustUnbounded[int](4, 2)
	if q.MaxOps() == 0 {
		t.Fatal("MaxOps() = 0")
	}
	if got, want := q.MaxOps(), wcq.Must[int](4, 2).MaxOps(); got != want {
		t.Fatalf("unbounded MaxOps %d, want per-ring bound %d", got, want)
	}
	s := q.Stats()
	if s.SlowEnqueues != 0 || s.SlowDequeues != 0 || s.Helps != 0 {
		t.Fatalf("fresh queue reports slow-path stats: %+v", s)
	}
	// Stats stay readable while the queue spans several rings.
	h, _ := q.Register()
	defer q.Unregister(h)
	for i := 0; i < 100; i++ {
		q.Enqueue(h, i)
	}
	_ = q.Stats() // must not race or panic mid-structure
	for i := 0; i < 100; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i {
			t.Fatalf("dequeue %d: (%d,%v)", i, v, ok)
		}
	}
}

func TestQueueBatchRoundTrip(t *testing.T) {
	q := wcq.Must[string](6, 2)
	h, _ := q.Register()
	defer q.Unregister(h)
	in := []string{"a", "b", "c", "d", "e"}
	if n := q.EnqueueBatch(h, in); n != 5 {
		t.Fatalf("EnqueueBatch = %d", n)
	}
	out := make([]string, 5)
	if n := q.DequeueBatch(h, out); n != 5 {
		t.Fatalf("DequeueBatch = %d", n)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], in[i])
		}
	}
}

func TestUnboundedBatchAcrossRings(t *testing.T) {
	q := wcq.MustUnbounded[int](3, 2) // 8-slot rings: batches span rings
	h, _ := q.Register()
	defer q.Unregister(h)
	const n = 1000
	in := make([]int, n)
	for i := range in {
		in[i] = i
	}
	q.EnqueueBatch(h, in) // must hop rings many times
	out := make([]int, 64)
	next := 0
	for next < n {
		m := q.DequeueBatch(h, out)
		if m == 0 {
			t.Fatalf("empty with %d remaining", n-next)
		}
		for _, v := range out[:m] {
			if v != next {
				t.Fatalf("got %d, want %d", v, next)
			}
			next++
		}
	}
	if m := q.DequeueBatch(h, out); m != 0 {
		t.Fatalf("drained queue batch-yielded %d", m)
	}
}
